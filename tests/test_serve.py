"""Tests for the online serving subsystem (repro.serve)."""

import asyncio

import numpy as np
import pytest

from repro.engine import ExecutionEngine
from repro.perf.report import service_stats_table
from repro.search import search_one
from repro.serve import (
    AlignmentService,
    DeadlineExceededError,
    MicroBatcher,
    PendingRequest,
    Priority,
    ServiceClosedError,
    ServiceOverloadedError,
    SyncAlignmentClient,
)
from repro.util.checks import ReproError, ValidationError
from repro.util.rng import make_rng
from repro.workloads import MutationModel, mutate, random_genome


def _pairs(count, seed=5, lengths=(24, 40, 64)):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        q = "".join(rng.choice(list("ACGT"), int(rng.choice(lengths))))
        s = "".join(rng.choice(list("ACGT"), int(rng.choice(lengths))))
        out.append((q, s))
    return out


def _req(key, qlen=8, slen=8, priority=Priority.NORMAL, kind="score"):
    loop = asyncio.new_event_loop()
    fut = loop.create_future()
    loop.close()
    return PendingRequest(
        key=key,
        kind=kind,
        query=np.zeros(qlen, dtype=np.uint8),
        subject=np.zeros(slen, dtype=np.uint8),
        future=fut,
        priority=priority,
    )


class TestMicroBatcher:
    def test_full_bucket_returned_on_target(self):
        mb = MicroBatcher(target_batch=3, max_linger=1.0)
        assert mb.add(_req(0), now=0.0) is None
        assert mb.add(_req(1), now=0.1) is None
        full = mb.add(_req(2), now=0.2)
        assert full is not None and len(full) == 3
        assert mb.pending == 0

    def test_shapes_bucket_separately(self):
        mb = MicroBatcher(target_batch=2, max_linger=1.0)
        assert mb.add(_req(0, qlen=8), now=0.0) is None
        assert mb.add(_req(1, qlen=16), now=0.0) is None
        assert mb.pending == 2
        full = mb.add(_req(2, qlen=8), now=0.0)
        assert full is not None and full.shape == (8, 8)
        assert mb.pending == 1

    def test_due_pops_expired_most_urgent_first(self):
        mb = MicroBatcher(target_batch=10, max_linger=0.01)
        mb.add(_req(0, qlen=8, priority=Priority.BULK), now=0.0)
        mb.add(_req(1, qlen=16, priority=Priority.INTERACTIVE), now=0.0)
        mb.add(_req(2, qlen=32), now=1.0)  # not yet due
        due = mb.due(now=0.5, linger=0.01)
        assert [b.priority for b in due] == [Priority.INTERACTIVE, Priority.BULK]
        assert mb.pending == 1

    def test_next_due_tracks_oldest(self):
        mb = MicroBatcher(target_batch=10, max_linger=0.5)
        assert mb.next_due(0.5) is None
        mb.add(_req(0), now=2.0)
        mb.add(_req(1, qlen=16), now=1.0)
        assert mb.next_due(0.5) == pytest.approx(1.5)

    def test_adaptive_linger_shrinks_with_backlog(self):
        mb = MicroBatcher(target_batch=10, max_linger=0.01)
        idle = mb.effective_linger(0, 100)
        half = mb.effective_linger(50, 100)
        full = mb.effective_linger(100, 100)
        assert idle == pytest.approx(0.01)
        assert half == pytest.approx(0.005)
        assert full == pytest.approx(mb.min_linger)
        assert idle > half > full

    def test_flush_all_clears(self):
        mb = MicroBatcher(target_batch=10, max_linger=1.0)
        for i in range(4):
            mb.add(_req(i, qlen=8 + 8 * (i % 2)), now=0.0)
        buckets = mb.flush_all()
        assert sum(len(b) for b in buckets) == 4
        assert mb.pending == 0 and mb.flush_all() == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            MicroBatcher(target_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(max_linger=-1.0)


class TestAlignmentService:
    def test_results_bit_identical_to_direct_engine(self):
        pairs = _pairs(257)

        async def serve():
            async with AlignmentService(backend="rowscan", max_linger=0.002) as svc:
                scores = await asyncio.gather(
                    *(svc.submit(q, s) for q, s in pairs)
                )
                assert svc.stats.batches < len(pairs)  # actually micro-batched
                return scores

        served = asyncio.run(serve())
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.submit_batch([q for q, _ in pairs], [s for _, s in pairs])
        assert served == [int(x) for x in direct]

    def test_deadline_expiry_rejects_before_execution(self):
        async def main():
            with ExecutionEngine(backend="rowscan") as eng:
                async with AlignmentService(eng, target_batch=64, max_linger=0.01) as svc:
                    with pytest.raises(DeadlineExceededError):
                        await svc.submit("ACGTACGT", "ACGTACGT", timeout=0.0)
                    # Never reached execution: the engine saw no work at all.
                    assert eng.stats.batches == 0 and eng.stats.exec.pairs == 0
                    assert svc.stats.rejected == {"deadline": 1}
                    assert svc.stats.completed == 0

        asyncio.run(main())

    def test_deadline_tighter_than_linger_still_executes(self):
        # A servable deadline must trigger an early flush, not passively
        # expire while the bucket waits out a much longer linger bound.
        async def main():
            async with AlignmentService(
                backend="rowscan", target_batch=64, max_linger=10.0
            ) as svc:
                score = await asyncio.wait_for(
                    svc.submit("ACGT", "ACGT", timeout=0.05), timeout=5.0
                )
                assert svc.stats.rejected == {}
                return score

        assert asyncio.run(main()) == 8

    def test_linger_flush_fires_on_lone_request(self):
        async def main():
            async with AlignmentService(
                backend="rowscan", target_batch=64, max_linger=0.005
            ) as svc:
                score = await asyncio.wait_for(svc.submit("ACGT", "ACGT"), timeout=5.0)
                assert svc.stats.flush_causes == {"linger": 1}
                assert svc.stats.occupancy == {1: 1}
                return score

        assert asyncio.run(main()) == 8  # 4 matches x +2

    def test_drain_on_close_resolves_all_inflight(self):
        pairs = _pairs(17, seed=9, lengths=(16, 24))

        async def main():
            svc = AlignmentService(backend="rowscan", target_batch=64, max_linger=30.0)
            async with svc:
                tasks = [
                    asyncio.create_task(svc.submit(q, s)) for q, s in pairs
                ]
                await asyncio.sleep(0.01)
                assert svc.queue_depth == len(pairs)  # all buffered, none flushed
            # __aexit__ drained: every future resolved with a real score.
            scores = await asyncio.gather(*tasks)
            assert svc.stats.flush_causes.get("drain", 0) >= 1
            return scores

        scores = asyncio.run(main())
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.submit_batch([q for q, _ in pairs], [s for _, s in pairs])
        assert scores == [int(x) for x in direct]

    def test_queue_full_rejection_and_priority_classes(self):
        async def main():
            async with AlignmentService(
                backend="rowscan",
                max_queue_depth=4,
                bulk_fraction=0.5,
                target_batch=100,
                max_linger=30.0,
            ) as svc:
                tasks = [
                    asyncio.create_task(svc.submit("ACGTACGT", "ACGTACGT"))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.005)
                # Depth 2 = bulk capacity (4 * 0.5): BULK is turned away...
                with pytest.raises(ServiceOverloadedError):
                    await svc.submit("ACGT", "ACGT", priority=Priority.BULK)
                # ...while NORMAL still fits.
                tasks += [
                    asyncio.create_task(svc.submit("ACGTACGT", "ACGTACGT"))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.005)
                with pytest.raises(ServiceOverloadedError):
                    await svc.submit("ACGT", "ACGT")
                assert svc.stats.rejected == {"queue_full": 2}
            # close() drained the buffered bucket; every admitted future resolved
            await asyncio.gather(*tasks)

        asyncio.run(main())

    def test_closed_service_rejects_new_requests(self):
        async def main():
            svc = AlignmentService(backend="rowscan")
            async with svc:
                assert await svc.submit("ACGT", "ACGT") == 8
            with pytest.raises(ServiceClosedError):
                await svc.submit("ACGT", "ACGT")
            await svc.close()  # double close is a no-op

        asyncio.run(main())

    def test_align_requests_micro_batch(self):
        pairs = _pairs(9, seed=11, lengths=(20,))

        async def main():
            async with AlignmentService(backend="rowscan", max_linger=0.002) as svc:
                return await asyncio.gather(
                    *(svc.submit_align(q, s) for q, s in pairs)
                )

        results = asyncio.run(main())
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.align_batch([q for q, _ in pairs], [s for _, s in pairs])
        for got, want in zip(results, direct):
            assert got.score == want.score
            assert got.query_aligned == want.query_aligned
            assert got.subject_aligned == want.subject_aligned

    def test_execution_failure_propagates_to_futures(self):
        async def main():
            eng = ExecutionEngine(backend="rowscan")
            eng.close()  # a closed engine must fail the batch, not serve it
            async with AlignmentService(eng, max_linger=0.001) as svc:
                with pytest.raises(ReproError):
                    await svc.submit_align("ACGT", "ACGT")
                with pytest.raises(ReproError):
                    await svc.submit("ACGT", "ACGT")
                assert svc.stats.failed == 2

        asyncio.run(main())

    def test_deadline_checked_again_on_dispatch_thread(self):
        # A request whose deadline passes while its batch waits for a pool
        # thread must be expired by the thread-side gate, not executed —
        # and occupancy stats must count only what actually ran.
        async def main():
            async with AlignmentService(backend="rowscan", max_linger=0.001) as svc:
                ok = svc._admit("score", "ACGT", "ACGT", Priority.NORMAL, timeout=None)
                late = svc._admit("score", "ACGT", "ACGT", Priority.NORMAL, timeout=None)
                late.deadline = svc._loop.time() - 1.0  # expired in the queue
                await svc._run_batch("score", ok.shape, [ok, late], "size")
                assert await ok.future == 8
                with pytest.raises(DeadlineExceededError):
                    await late.future
                assert svc.stats.rejected == {"deadline": 1}
                assert svc.stats.occupancy == {1: 1}  # expired req filled no lane
                assert svc.engine.stats.exec.pairs == 1

        asyncio.run(main())

    def test_bulk_fraction_validated(self):
        with pytest.raises(ValidationError):
            AlignmentService(backend="rowscan", bulk_fraction=1.5)
        with pytest.raises(ValidationError):
            AlignmentService(backend="rowscan", bulk_fraction=-0.1)

    def test_search_routing_matches_search_one(self):
        rng = make_rng(31)
        ref = random_genome(15_000, seed=rng)
        model = MutationModel(substitution=0.02, insertion=0.001, deletion=0.001)
        query = mutate(ref[4000:4100], model, seed=rng)

        async def main():
            async with AlignmentService(
                backend="rowscan",
                database=ref,
                search_kwargs={"k": 3, "min_score": 150},
            ) as svc:
                return await svc.submit_search(query)

        hits = asyncio.run(main())
        direct = search_one(query, ref, k=3, min_score=150)
        assert [(h.record, h.start, h.score) for h in hits] == [
            (h.record, h.start, h.score) for h in direct
        ]
        assert hits and hits[0].start <= 4000 < hits[0].end

    def test_search_without_database_raises(self):
        async def main():
            async with AlignmentService(backend="rowscan") as svc:
                with pytest.raises(ValidationError):
                    await svc.submit_search("ACGTACGTACGTACGT")

        asyncio.run(main())

    def test_search_custom_scheme_and_engine_override_rejected(self):
        from repro.core.scoring import (
            linear_gap_scoring,
            semiglobal_scheme,
            simple_subst_scoring,
        )

        rng = make_rng(37)
        ref = random_genome(8_000, seed=rng)
        query = ref[2000:2080].copy()
        scheme = semiglobal_scheme(linear_gap_scoring(simple_subst_scoring(3, -2), -2))

        async def main():
            async with AlignmentService(
                backend="rowscan",
                database=ref,
                search_kwargs={"k": 2, "scheme": scheme},
            ) as svc:
                hits = await svc.submit_search(query)
                with pytest.raises(ValidationError):
                    await svc.submit_search(query, engine="nope")
                return hits

        hits = asyncio.run(main())
        direct = search_one(query, ref, k=2, scheme=scheme)
        assert [(h.start, h.score) for h in hits] == [
            (h.start, h.score) for h in direct
        ]
        assert hits[0].score == 3 * 80  # exact placement under the custom scheme
        with pytest.raises(ValidationError):
            AlignmentService(database=ref, search_kwargs={"engine": "nope"})

    def test_stats_table_renders(self):
        async def main():
            async with AlignmentService(backend="rowscan", max_linger=0.001) as svc:
                await asyncio.gather(
                    *(svc.submit(q, s) for q, s in _pairs(8, seed=13))
                )
                text = svc.report()
                assert "Alignment service" in text
                assert "latency p50 / p99" in text
                assert "Batch occupancy" in text
                assert service_stats_table(svc.stats)  # bare stats also accepted

        asyncio.run(main())


class TestSyncClient:
    def test_score_and_score_many_match_direct(self):
        pairs = _pairs(65, seed=17)
        with SyncAlignmentClient(backend="rowscan", max_linger=0.002) as client:
            many = client.score_many(pairs)
            one = client.score(*pairs[0])
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.submit_batch([q for q, _ in pairs], [s for _, s in pairs])
        assert many == [int(x) for x in direct]
        assert one == int(direct[0])

    def test_score_many_larger_than_queue_depth(self):
        # A workload bigger than the admission queue must window itself
        # instead of rejecting its own tail.
        pairs = _pairs(40, seed=19, lengths=(16,))
        with SyncAlignmentClient(
            backend="rowscan", max_linger=0.001, max_queue_depth=8
        ) as client:
            many = client.score_many(pairs)
            assert client.stats.rejected == {}
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.submit_batch([q for q, _ in pairs], [s for _, s in pairs])
        assert many == [int(x) for x in direct]

    def test_score_many_bulk_windows_to_bulk_capacity(self):
        # BULK windows must respect the *bulk* admission cap, not the full
        # queue depth — otherwise the call rejects its own tail.
        pairs = _pairs(15, seed=21, lengths=(16,))
        with SyncAlignmentClient(
            backend="rowscan",
            max_linger=0.001,
            max_queue_depth=20,
            bulk_fraction=0.2,
        ) as client:
            many = client.score_many(pairs, priority=Priority.BULK)
            assert client.stats.rejected == {}
        with ExecutionEngine(backend="rowscan") as eng:
            direct = eng.submit_batch([q for q, _ in pairs], [s for _, s in pairs])
        assert many == [int(x) for x in direct]

    def test_align_and_report(self):
        with SyncAlignmentClient(backend="rowscan", max_linger=0.001) as client:
            res = client.align("ACGTACGT", "ACGTACGT")
            assert res.score == 16
            assert "Alignment service" in client.report()

    def test_close_is_idempotent_and_rejects_after(self):
        client = SyncAlignmentClient(backend="rowscan", max_linger=0.001)
        assert client.score("ACGT", "ACGT") == 8
        client.close()
        client.close()
        with pytest.raises(ServiceClosedError):
            client.score("ACGT", "ACGT")

    def test_failed_construction_does_not_leak_loop_thread(self):
        import threading

        svc = AlignmentService(backend="rowscan")
        asyncio.run(svc.close())  # a service that refuses to start
        before = threading.active_count()
        with pytest.raises(ServiceClosedError):
            SyncAlignmentClient(service=svc)
        assert threading.active_count() == before  # loop thread joined


class TestBackendRouting:
    """Satellite: per-bucket backend routing behind the ServiceConfig flag."""

    def test_backend_for_policy(self):
        from repro.serve import ServiceConfig

        off = ServiceConfig()
        assert off.backend_for(64, 64) is None
        cfg = ServiceConfig(route_backends=True, full_lane_fraction=0.5)
        assert cfg.backend_for(64, 64) == "simd"
        assert cfg.backend_for(32, 64) == "simd"  # at the threshold
        assert cfg.backend_for(31, 64) == "rowscan"
        assert cfg.backend_for(1, 64) == "rowscan"

    def test_config_validates(self):
        from repro.serve import ServiceConfig

        with pytest.raises(ValidationError):
            ServiceConfig(full_lane_fraction=0.0)
        with pytest.raises(ValidationError):
            ServiceConfig(full_lane_fraction=1.5)

    def test_routed_scores_bit_identical(self):
        """Routing changes the cost model, never the scores."""
        from repro.engine import PlanCache
        from repro.serve import ServiceConfig

        pairs = _pairs(70, seed=19, lengths=(48,))  # one shape: full + straggler

        def run(config):
            async def main():
                with ExecutionEngine(backend="rowscan", plan_cache=PlanCache()) as eng:
                    async with AlignmentService(
                        eng, target_batch=32, max_linger=0.002, config=config
                    ) as svc:
                        scores = await asyncio.gather(
                            *(svc.submit(q, s) for q, s in pairs)
                        )
                        return list(scores), dict(eng.stats.backends_used)

            return asyncio.run(main())

        plain, plain_backends = run(None)
        routed, routed_backends = run(ServiceConfig(route_backends=True))
        assert routed == plain
        assert set(plain_backends) == {"rowscan"}
        # Full lanes went to simd; any straggler flush stayed on rowscan.
        assert routed_backends.get("simd", 0) >= 1

    def test_routed_search_hits_bit_identical(self):
        """Verify-bucket routing changes the cost model, never the hits."""
        from repro.serve import ServiceConfig

        rng = make_rng(23)
        ref = random_genome(20_000, seed=rng)
        model = MutationModel(substitution=0.03, insertion=0.0, deletion=0.0)
        positions = [1500, 6200, 11800, 17400]
        queries = [mutate(ref[p : p + 100], model, seed=rng) for p in positions]

        def run(config):
            async def main():
                async with AlignmentService(
                    backend="rowscan",
                    database=ref,
                    search_kwargs={"k": 3, "min_score": 160},
                    config=config,
                ) as svc:
                    return await asyncio.gather(
                        *(svc.submit_search(q) for q in queries)
                    )

            return asyncio.run(main())

        plain = run(None)
        routed = run(ServiceConfig(route_backends=True))
        flat = lambda res: [
            [(h.record, h.start, h.score) for h in hits] for hits in res
        ]
        assert flat(routed) == flat(plain)
        for qid, p in enumerate(positions):
            assert routed[qid] and routed[qid][0].start <= p < routed[qid][0].end
