"""Tests for health probes and readiness-aware routing (repro.obs.health).

Covers the liveness/readiness contract:

* registry mechanics — liveness vs readiness sets, duplicate rejection,
  raising probes becoming unhealthy results, verdict composition;
* the layer probe factories — engine executor, service admission queue,
  shard-pool workers (dead workers, lazy-start pools, clock drift);
* the router integration — per-shard probes installed at construction,
  ``_pick`` skipping unready shards (counted), and searches rejected
  outright when the fan-in would be partial.
"""

import asyncio

import pytest

from repro.obs import HealthRegistry, MetricsRegistry, ProbeResult
from repro.obs.health import engine_probe, pool_probe, service_probe
from repro.serve import AlignmentService, Priority, ServiceOverloadedError
from repro.shard import ShardPlan, ShardRouter, ShardWorkerPool
from repro.util.checks import ValidationError


class TestHealthRegistry:
    def test_verdict_composition(self):
        reg = HealthRegistry()
        reg.add_probe("good", lambda: True)
        reg.add_probe("detail", lambda: ProbeResult(True, "fine", data={"n": 1}))
        verdict = reg.readiness()
        assert verdict.healthy and verdict.failing() == []
        assert verdict.probes["detail"].data == {"n": 1}
        assert "ok" in verdict.summary()
        doc = verdict.as_dict()
        assert doc["kind"] == "readiness" and doc["probes"]["good"]["healthy"]

    def test_one_failing_probe_fails_the_verdict(self):
        reg = HealthRegistry()
        reg.add_probe("good", lambda: True)
        reg.add_probe("bad", lambda: ProbeResult(False, "broken"))
        verdict = reg.liveness()
        assert not verdict.healthy and verdict.failing() == ["bad"]
        assert "bad" in verdict.summary()

    def test_raising_probe_is_unhealthy_not_a_crash(self):
        reg = HealthRegistry()

        def boom():
            raise RuntimeError("dead layer")

        reg.add_probe("boom", boom)
        verdict = reg.readiness()
        assert not verdict.healthy
        assert "dead layer" in verdict.probes["boom"].detail

    def test_liveness_and_readiness_are_distinct_sets(self):
        reg = HealthRegistry()
        reg.add_probe("live-only", lambda: False, readiness=False)
        reg.add_probe("ready-only", lambda: False, liveness=False)
        assert reg.liveness().failing() == ["live-only"]
        assert reg.readiness().failing() == ["ready-only"]

    def test_validation(self):
        reg = HealthRegistry()
        reg.add_probe("x", lambda: True)
        with pytest.raises(ValidationError):
            reg.add_probe("x", lambda: True)  # no silent shadowing
        with pytest.raises(ValidationError):
            reg.add_probe("y", "not-callable")
        with pytest.raises(ValidationError):
            reg.add_probe("z", lambda: True, liveness=False, readiness=False)
        with pytest.raises(ValidationError):
            reg.check("vibes")
        reg.add_probe("odd", lambda: "yes")
        assert not reg.readiness().healthy  # bad return type is unhealthy

    def test_remove_probe(self):
        reg = HealthRegistry()
        reg.add_probe("x", lambda: False)
        reg.remove_probe("x")
        assert reg.names() == [] and reg.readiness().healthy


class TestProbeFactories:
    def test_engine_probe(self):
        from repro.engine import ExecutionEngine

        engine = ExecutionEngine(None)
        probe = engine_probe(engine)
        result = probe()
        assert result.healthy and result.data["lanes"] >= 1
        engine.close()
        assert not probe().healthy

    def test_service_probe_states(self):
        async def main():
            svc = AlignmentService(scheme=None)
            probe = service_probe(svc, max_fill=0.5)
            assert probe().healthy  # unstarted service is ready
            async with svc:
                assert probe().healthy
                svc._depth = svc.max_queue_depth  # saturate
                result = probe()
                assert not result.healthy and "saturated" in result.detail
                svc._depth = 0
            assert not probe().healthy  # closed service is not ready
            return True

        assert asyncio.run(main())
        with pytest.raises(ValidationError):
            service_probe(AlignmentService(scheme=None), max_fill=2.0)

    def test_pool_probe_fake_states(self):
        class FakePool:
            closed = False
            alive = None

            def liveness(self):
                return self.alive

        pool = FakePool()
        reg = MetricsRegistry()
        probe = pool_probe(pool, registry=reg)
        lazy = probe()
        assert lazy.healthy and "lazily" in lazy.detail  # unstarted pool
        pool.alive = {0: True, 1: True}
        assert probe().healthy
        pool.alive = {0: True, 1: False}
        dead = probe()
        assert not dead.healthy and "[1]" in dead.detail
        pool.closed = True
        assert not probe().healthy

    def test_pool_probe_clock_drift(self):
        class FakePool:
            closed = False

            def liveness(self):
                return {0: True, 1: True}

        reg = MetricsRegistry()
        offsets = reg.gauge(
            "pool_shard_clock_offset_us", "offsets", labels=("shard",)
        )
        offsets.set(5.0, shard=0)
        offsets.set(900.0, shard=1)
        loose = pool_probe(FakePool(), registry=reg)
        assert loose().healthy  # no bound configured
        tight = pool_probe(FakePool(), registry=reg, max_clock_offset_us=100.0)
        result = tight()
        assert not result.healthy and "drifted" in result.detail
        assert result.data["clock_offset_us"]["1"] == 900.0

    def test_real_pool_liveness_is_none_before_start(self):
        pool = ShardWorkerPool(ShardPlan(num_shards=2))
        assert pool.liveness() is None
        assert pool_probe(pool)().healthy


class TestRouterHealth:
    def test_per_shard_probes_installed(self):
        router = ShardRouter(num_shards=2)
        assert router.health.names() == [
            "engine:0",
            "engine:1",
            "service:0",
            "service:1",
        ]
        assert router.health.readiness().healthy
        assert router.health.liveness().healthy

    def test_pick_skips_unready_shard(self):
        async def main():
            async with ShardRouter(num_shards=2) as router:
                router.services[1]._depth = router.services[1].max_queue_depth
                for _ in range(4):
                    picked = router._pick()
                    assert picked is router.services[0]
                skips = router.registry.get("router_unready_skips_total")
                assert skips.value(shard=1) == 4
                # Scoring still lands on the ready shard.
                score = await router.submit("ACGT", "ACGT")
                assert isinstance(score, int)
                router.services[1]._depth = 0
            return True

        assert asyncio.run(main())

    def test_all_unready_falls_back_to_least_loaded(self):
        router = ShardRouter(num_shards=2)
        for svc in router.services:
            svc._depth = svc.max_queue_depth
        assert router._pick() is not None  # honest rejection beats a crash

    def test_search_rejected_when_any_shard_unready(self):
        async def main():
            async with ShardRouter(num_shards=2) as router:
                router.services[1]._depth = router.services[1].max_queue_depth
                with pytest.raises(ServiceOverloadedError, match="unready"):
                    await router.submit_search("ACGT")
                rejected = router.registry.get("router_rejected_total")
                assert rejected.value(cause="unready") == 1
                router.services[1]._depth = 0
            return True

        assert asyncio.run(main())

    def test_scrape_registry_merges_shards_with_labels(self):
        async def main():
            async with ShardRouter(num_shards=2) as router:
                await router.submit("ACGT", "ACGT")
                scrape = router.scrape_registry()
                submitted = scrape.get("serve_submitted_total")
                per_shard = submitted.series()
                assert sum(per_shard.values()) == 1
                assert all(key in (("0",), ("1",)) for key in per_shard)
                assert scrape.get("router_rejected_total") is not None
                text = scrape.to_prometheus()
                assert 'serve_submitted_total{shard="' in text
            return True

        assert asyncio.run(main())
