"""Tests for the high-level Aligner and the C-wrapper-style API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import align, align_score
from repro.core.aligner import BACKEND_FACTORIES, Aligner
from repro.core.api import (
    align_batch_scores,
    compute_global_score,
    compute_local_score,
    compute_semiglobal_score,
    construct_global_alignment,
    construct_local_alignment,
    construct_semiglobal_alignment,
)
from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    local_scheme,
    rescore_alignment,
    simple_subst_scoring,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestAlignerBackends:
    @pytest.mark.parametrize("backend", ["rowscan", "scalar", "reference"])
    def test_backends_agree(self, backend):
        a = Aligner(backend=backend)
        assert a.score("ACGTACGT", "ACGTCGT") == 13

    def test_invalid_backend(self):
        with pytest.raises(ValidationError):
            Aligner(backend="quantum")

    def test_invalid_cutoff(self):
        with pytest.raises(ValidationError):
            Aligner(traceback_cutoff=0)

    def test_repr(self):
        assert "global" in repr(Aligner())

    def test_core_backend_registered(self):
        assert BACKEND_FACTORIES["core"] is Aligner

    @settings(max_examples=20, deadline=None)
    @given(q=dna, s=dna)
    def test_score_align_consistent(self, q, s):
        a = Aligner()
        res = a.align(q, s)
        assert res.score == a.score(q, s)

    def test_int16_dtype(self):
        a = Aligner(dtype=np.int16)
        assert a.score("ACGT" * 10, "ACGT" * 10) == 80


class TestBatch:
    def test_batch_matches_singles(self):
        rng = np.random.default_rng(3)
        a = Aligner()
        queries = ["".join(rng.choice(list("ACGT"), 20)) for _ in range(10)]
        subjects = ["".join(rng.choice(list("ACGT"), 25)) for _ in range(10)]
        batch = a.score_batch(queries, subjects)
        singles = [a.score(q, s) for q, s in zip(queries, subjects)]
        assert list(batch) == singles

    def test_mixed_lengths_grouped(self):
        a = Aligner()
        queries = ["ACGT", "ACGTACGT", "TTTT", "GGGG", "ACGTACGT"]
        subjects = ["ACGA", "ACGTAGGT", "TTAT", "GCGG", "ACCTACGT"]
        batch = a.score_batch(queries, subjects)
        singles = [a.score(q, s) for q, s in zip(queries, subjects)]
        assert list(batch) == singles

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            Aligner().score_batch(["AC"], ["AC", "GT"])

    def test_align_batch(self):
        a = Aligner()
        results = a.align_batch(["ACGT", "GGTT"], ["ACGA", "GCTT"])
        assert len(results) == 2
        assert all(r.score == a.score(q, s) for r, q, s in zip(results, ["ACGT", "GGTT"], ["ACGA", "GCTT"]))

    def test_scalar_backend_batch_fallback(self):
        a = Aligner(backend="scalar")
        batch = a.score_batch(["ACGT", "GGTT"], ["ACGA", "GCTT"])
        assert list(batch) == [a.score("ACGT", "ACGA"), a.score("GGTT", "GCTT")]


class TestTopLevelApi:
    def test_align_default_scheme(self):
        res = align("ACGTACGT", "ACGTCGT")
        assert res.score == 13
        assert rescore_alignment(
            res.query_aligned, res.subject_aligned, repro.default_scheme().scoring
        ) == 13

    def test_align_score(self):
        assert align_score("ACGT", "ACGT") == 8

    def test_custom_scheme(self):
        scheme = local_scheme(affine_gap_scoring(simple_subst_scoring(3, -2), -4, -1))
        q, s = "TTACGTACGTT", "GGACGTACGGG"
        assert align_score(q, s, scheme) == score_reference(encode(q), encode(s), scheme)

    def test_batch_scores_function(self):
        out = align_batch_scores(["ACGT", "AAAA"], ["ACGT", "TTTT"])
        assert out[0] == 8

    def test_version(self):
        assert repro.__version__


class TestCWrappers:
    """The paper's extern-C-style entry points."""

    def test_construct_global(self):
        res = construct_global_alignment("ACGTACGT", "ACGTCGT")
        assert res.score == 13
        assert len(res.query_aligned) == len(res.subject_aligned)

    def test_construct_global_affine(self):
        res = construct_global_alignment(
            "AAACCCGGG", "AAAGGG", gap_open=-2, gap_extend=-1
        )
        assert res.score == 12 - 5

    def test_construct_local(self):
        res = construct_local_alignment("TTTACGTACGTTT", "GGGACGTACGGGG")
        assert res.score == 14

    def test_construct_semiglobal(self):
        res = construct_semiglobal_alignment("ACGTACGT", "TTTTACGTACGTTTTT")
        assert res.score == 16

    def test_score_only_variants(self):
        assert compute_global_score("ACGT", "ACGT") == 8
        assert compute_local_score("AAAA", "TTTT") == 0
        assert compute_semiglobal_score("ACGT", "TTACGTTT") == 8

    def test_custom_match_scores(self):
        assert compute_global_score("ACGT", "ACGT", match=5) == 20

    @settings(max_examples=15, deadline=None)
    @given(q=dna, s=dna)
    def test_wrappers_match_reference(self, q, s):
        from repro.core.scoring import default_scheme

        assert compute_global_score(q, s) == score_reference(
            encode(q), encode(s), default_scheme()
        )
