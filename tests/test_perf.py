"""Tests for the performance harness (repro.perf)."""

import pytest

from repro.perf import (
    DEVICE_POWER,
    code_sharing,
    energy_table,
    format_table,
    measure_gcups,
)


class TestMeasure:
    def test_measure_runs_and_reports(self):
        calls = []
        m = measure_gcups("test", cells=1_000_000, fn=lambda: calls.append(1), repeats=3)
        assert len(calls) == 4  # 1 warmup + 3 measured
        assert m.gcups > 0
        assert "GCUPS" in m.row()

    def test_median_used(self):
        import time

        m = measure_gcups("t", 1000, lambda: time.sleep(0.001), repeats=3, warmup=0)
        assert m.median_seconds >= 0.001


class TestEnergy:
    def test_paper_wattages(self):
        assert DEVICE_POWER["Intel Xeon Gold 6130"].watts == 125.0
        assert DEVICE_POWER["Titan V"].watts == 250.0
        assert DEVICE_POWER["ZCU104"].watts == 6.181

    def test_table2_reproduction(self):
        # Feeding the paper's GCUPS anchors must give Table II's numbers.
        rows = energy_table(
            [
                ("Intel Xeon Gold 6130", "linear", 128.0),
                ("Titan V", "linear", 189.25),
                ("ZCU104", "linear", 19.7),
            ]
        )
        assert rows[0].gcups_per_watt == pytest.approx(1.024, abs=0.01)
        assert rows[1].gcups_per_watt == pytest.approx(0.757, abs=0.01)
        assert rows[2].gcups_per_watt == pytest.approx(3.187, abs=0.02)

    def test_fpga_most_efficient(self):
        rows = energy_table(
            [
                ("Intel Xeon Gold 6130", "linear", 128.0),
                ("Titan V", "linear", 189.25),
                ("ZCU104", "linear", 19.7),
            ]
        )
        best = max(rows, key=lambda r: r.gcups_per_watt)
        assert best.device == "ZCU104"  # >3x CPU, >4x GPU (paper §V)
        assert best.gcups_per_watt > 3 * rows[0].gcups_per_watt
        assert best.gcups_per_watt > 4 * rows[1].gcups_per_watt

    def test_row_format(self):
        (row,) = energy_table([("ZCU104", "affine", 19.7)])
        assert "GCUPS/W" in row.row()


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_code_sharing_breakdown(self):
        cs = code_sharing()
        assert cs.total > 1000
        assert set(cs.lines) == {"gpu", "fpga", "cpu", "shared"}
        # The architecture claim: the majority of the library is shared
        # across execution targets (paper: 52% shared, 23% GPU, 14% SIMD,
        # <11% scalar CPU).
        assert cs.fraction("shared") > 0.5
        assert cs.fraction("gpu") < 0.3
        assert cs.fraction("cpu") < 0.3

    def test_code_sharing_rows(self):
        cs = code_sharing()
        rows = cs.rows()
        assert rows[0][0] == "shared"
        assert all(len(r) == 3 for r in rows)
