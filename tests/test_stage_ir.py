"""Tests for the staged IR and partial evaluator (repro.stage.ir / peval)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stage import (
    BinOp,
    Cmp,
    Const,
    DynConst,
    For,
    KernelBuilder,
    Let,
    Max,
    Min,
    Select,
    Var,
    as_expr,
    contains_node,
    count_nodes,
    dyn,
    fold_expr,
    is_static,
    select,
    smax,
    smin,
    specialize,
    static_value,
)
from repro.stage.peval import NEG_INF
from repro.core.types import NEG_INF as CORE_NEG_INF
from repro.util.checks import StagingError


def test_neg_inf_sentinels_agree():
    assert NEG_INF == CORE_NEG_INF


class TestExprConstruction:
    def test_as_expr_int(self):
        assert as_expr(5) == Const(5)

    def test_as_expr_bool(self):
        assert as_expr(True) == Const(True)

    def test_as_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_as_expr_rejects_float_str(self):
        with pytest.raises(TypeError):
            as_expr("hello")

    def test_operator_overloading(self):
        x = Var("x")
        e = (x + 1) * 2 - x
        assert isinstance(e, BinOp) and e.op == "-"

    def test_radd(self):
        e = 1 + Var("x")
        assert e == BinOp("+", Const(1), Var("x"))

    def test_comparison_builds_cmp(self):
        assert isinstance(Var("x") < 3, Cmp)
        assert isinstance(Var("x").eq(3), Cmp)

    def test_neg(self):
        assert fold_expr(-Const(5)) == Const(-5)


class TestStaticness:
    def test_const_is_static(self):
        assert is_static(Const(3)) and is_static(7) and is_static(True)

    def test_var_is_dynamic(self):
        assert not is_static(Var("x"))

    def test_dyn_blocks_staticness(self):
        assert not is_static(dyn(5))

    def test_static_value(self):
        assert static_value(Const(3)) == 3 and static_value(4) == 4
        with pytest.raises(ValueError):
            static_value(Var("x"))


class TestFolding:
    def test_const_arith(self):
        assert fold_expr(Const(2) + Const(3)) == Const(5)
        assert fold_expr(Const(7) * Const(6)) == Const(42)
        assert fold_expr(Const(7) // Const(2)) == Const(3)

    def test_identity_add_zero(self):
        x = Var("x")
        assert fold_expr(x + 0) == x
        assert fold_expr(0 + x) == x
        assert fold_expr(x - 0) == x

    def test_identity_mul(self):
        x = Var("x")
        assert fold_expr(x * 1) == x
        assert fold_expr(x * 0) == Const(0)
        assert fold_expr(1 * x) == x

    def test_sub_self(self):
        assert fold_expr(Var("x") - Var("x")) == Const(0)

    def test_dynconst_not_folded(self):
        e = dyn(2) + dyn(3)
        assert fold_expr(e) == e  # stays a BinOp

    def test_cmp_folding(self):
        assert fold_expr(Const(2) < Const(3)) == Const(True)
        assert fold_expr(Var("x").eq(Var("x"))) == Const(True)

    def test_select_folding(self):
        x, y = Var("x"), Var("y")
        assert select(True, x, y) is x
        assert select(False, x, y) is y
        assert fold_expr(Select(Const(True), x, y)) == x
        assert fold_expr(Select(Var("c"), x, x)) == x

    def test_max_neg_inf_identity(self):
        # The global-alignment ν=−∞ argument disappears entirely.
        x = Var("x")
        assert fold_expr(Max(x, Const(NEG_INF))) == x
        assert fold_expr(Max(Const(NEG_INF), x)) == x
        assert fold_expr(Max(x, Const(0))) == Max(x, Const(0))  # local ν stays

    def test_max_min_const(self):
        assert fold_expr(Max(Const(2), Const(5))) == Const(5)
        assert fold_expr(Min(Const(2), Const(5))) == Const(2)
        assert fold_expr(Max(Var("x"), Var("x"))) == Var("x")

    def test_smax_nary(self):
        assert fold_expr(smax(1, 5, 3)) == Const(5)
        assert fold_expr(smin(4, 2, 9)) == Const(2)

    def test_nested_fold(self):
        x = Var("x")
        e = Max(x + (Const(2) - Const(2)), Const(NEG_INF))
        assert fold_expr(e) == x

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_fold_matches_python(self, a, b):
        assert fold_expr(Const(a) + Const(b)) == Const(a + b)
        assert fold_expr(Max(Const(a), Const(b))) == Const(max(a, b))
        assert fold_expr(Const(a) < Const(b)) == Const(a < b)


class TestBuilder:
    def test_simple_kernel(self):
        b = KernelBuilder("k", ["x"])
        v = b.let(b.var("x") + 1)
        b.ret(v)
        fn = b.build()
        assert fn.params == ["x"]
        assert len(fn.body) == 2

    def test_let_const_passthrough(self):
        b = KernelBuilder("k", [])
        assert b.let(Const(5)) == Const(5)
        assert b.let(Var("y")) == Var("y")

    def test_loop_scoping(self):
        b = KernelBuilder("k", ["n"])
        with b.loop("i", 0, b.var("n")) as i:
            b.let(i + 1)
        fn = b.build()
        assert isinstance(fn.body[0], For)

    def test_unclosed_scope_detected(self):
        b = KernelBuilder("k", [])
        cm = b.loop("i", 0, 4)
        cm.__enter__()
        with pytest.raises(StagingError, match="unclosed"):
            b.build()

    def test_else_requires_if(self):
        b = KernelBuilder("k", [])
        with pytest.raises(StagingError, match="else_"):
            with b.else_():
                pass

    def test_mutable_cells(self):
        b = KernelBuilder("k", ["n"])
        acc = b.mutable(0)
        with b.loop("i", 0, b.var("n")) as i:
            acc.set(acc.value + i)
        b.ret(acc.value)
        fn = b.build()
        assert fn.body[0].name == acc.name

    def test_build_twice_fails(self):
        b = KernelBuilder("k", [])
        b.build()
        with pytest.raises(StagingError):
            b.build()


class TestSpecialize:
    def test_dead_let_removed(self):
        b = KernelBuilder("k", ["x"])
        b.let(b.var("x") * 99, "dead")
        b.ret(b.var("x"))
        fn = specialize(b.build())
        assert count_nodes(fn) == 2  # just Return(Var)

    def test_const_branch_pruned(self):
        b = KernelBuilder("k", ["x"])
        with b.if_(Const(True)):
            b.ret(b.var("x") + 1)
        with b.else_():
            b.ret(b.var("x") - 1)
        fn = specialize(b.build())
        from repro.stage.ir import If, Return

        assert not contains_node(fn, If)
        assert isinstance(fn.body[0], Return)

    def test_zero_trip_loop_dropped(self):
        b = KernelBuilder("k", ["A"])
        with b.loop("i", 3, 3) as i:
            b.store("A", (i,), i)
        fn = specialize(b.build())
        assert fn.body == []

    def test_small_const_loop_unrolled(self):
        b = KernelBuilder("k", ["A"])
        with b.loop("i", 0, 4) as i:
            b.store("A", (i,), i * 2)
        fn = specialize(b.build())
        assert not contains_node(fn, For)
        from repro.stage.ir import Store

        stores = [s for s in fn.body if isinstance(s, Store)]
        assert len(stores) == 4
        assert stores[3].value == Const(6)

    def test_large_loop_not_unrolled(self):
        b = KernelBuilder("k", ["A"])
        with b.loop("i", 0, 1000) as i:
            b.store("A", (i,), i)
        fn = specialize(b.build())
        assert contains_node(fn, For)

    def test_copy_propagation(self):
        b = KernelBuilder("k", ["x"])
        c = b.let(as_expr(3), "c")
        d = b.let(b.var("x") + c)
        b.ret(d)
        fn = specialize(b.build())
        # The 'c' binding is propagated into the add and removed.
        names = [s.name for s in fn.body if isinstance(s, Let)]
        assert "c" not in "".join(names)

    def test_mutated_binding_not_propagated(self):
        b = KernelBuilder("k", ["n"])
        acc = b.mutable(0)
        with b.loop("i", 0, b.var("n")) as i:
            acc.set(acc.value + i)
        b.ret(acc.value)
        fn = specialize(b.build())
        # Accumulator must survive: it is mutated in the loop.
        assert any(isinstance(s, Let) and s.name == acc.name for s in fn.body)

    def test_nu_neg_inf_elided_nu_zero_kept(self):
        # The paper's showcase: ν=−∞ (global) leaves no residue, ν=0 (local)
        # keeps exactly one extra max.
        def make(nu):
            b = KernelBuilder("k", ["a", "b"])
            b.ret(smax(b.var("a"), b.var("b"), Const(nu)))
            return specialize(b.build())

        assert count_nodes(make(NEG_INF)) < count_nodes(make(0))
