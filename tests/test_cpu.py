"""Tests for the CPU mapping (repro.cpu: tiles, wavefront, SIMD batching)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.cpu import (
    AVX2,
    AVX512,
    SCALAR_PRESET,
    SimdBatchAligner,
    SimdPreset,
    WavefrontAligner,
    initial_borders,
    relax_tile,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode

SUB = simple_subst_scoring(2, -1)
SCHEMES = {
    "global-linear": global_scheme(linear_gap_scoring(SUB, -1)),
    "global-affine": global_scheme(affine_gap_scoring(SUB, -2, -1)),
    "local-linear": local_scheme(linear_gap_scoring(SUB, -1)),
    "local-affine": local_scheme(affine_gap_scoring(SUB, -2, -1)),
    "semiglobal-linear": semiglobal_scheme(linear_gap_scoring(SUB, -1)),
    "semiglobal-affine": semiglobal_scheme(affine_gap_scoring(SUB, -2, -1)),
}


def _pair(rng, lo=2, hi=100):
    n, m = rng.integers(lo, hi, 2)
    return (
        rng.integers(0, 4, n).astype(np.uint8),
        rng.integers(0, 4, m).astype(np.uint8),
    )


class TestRelaxTileSingle:
    """One tile covering the whole matrix must equal the reference."""

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_whole_matrix_tile(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(1)
        q, s = _pair(rng, hi=40)
        borders = initial_borders(scheme, q.size, s.size, 1, 1)
        res = relax_tile(q, s, scheme, borders)
        ref = score_reference(q, s, scheme)
        from repro.core.types import AlignmentType

        if scheme.alignment_type is AlignmentType.GLOBAL:
            assert int(res.bottom_h[-1]) == ref
        elif scheme.alignment_type is AlignmentType.LOCAL:
            assert max(int(res.best), 0) == ref


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestWavefrontAligner:
    def test_matches_reference_various_tiles(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(hash(name) % 2**32)
        for tile in [(16, 16), (7, 13), (50, 20)]:
            q, s = _pair(rng)
            wa = WavefrontAligner(scheme, tile=tile)
            assert wa.score(q, s) == score_reference(q, s, scheme)

    def test_static_scheduler_agrees(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(3)
        q, s = _pair(rng)
        dyn = WavefrontAligner(scheme, tile=(16, 16), scheduler="dynamic").score(q, s)
        stat = WavefrontAligner(scheme, tile=(16, 16), scheduler="static").score(q, s)
        assert dyn == stat

    @settings(max_examples=10, deadline=None)
    @given(
        q=st.text(alphabet="ACGT", min_size=2, max_size=60),
        s=st.text(alphabet="ACGT", min_size=2, max_size=60),
        th=st.integers(3, 20),
        tw=st.integers(3, 20),
    )
    def test_tiling_invariance_property(self, name, q, s, th, tw):
        # The tiling must never change the score.
        scheme = SCHEMES[name]
        wa = WavefrontAligner(scheme, tile=(th, tw))
        assert wa.score(encode(q), encode(s)) == score_reference(
            encode(q), encode(s), scheme
        )


class TestWavefrontThreaded:
    def test_threads_match_serial(self):
        scheme = SCHEMES["global-affine"]
        rng = np.random.default_rng(5)
        q, s = _pair(rng, lo=300, hi=400)
        serial = WavefrontAligner(scheme, tile=(64, 64), threads=1).score(q, s)
        threaded = WavefrontAligner(scheme, tile=(64, 64), threads=4).score(q, s)
        assert serial == threaded == score_reference(q, s, scheme)

    def test_score_many_lane_blocks(self):
        scheme = SCHEMES["semiglobal-affine"]
        rng = np.random.default_rng(6)
        pairs = [_pair(rng, lo=40, hi=80) for _ in range(10)]
        wa = WavefrontAligner(scheme, tile=(16, 16), lanes=4)
        got = wa.score_many(pairs)
        assert got == [score_reference(q, s, scheme) for q, s in pairs]

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            WavefrontAligner(tile=(0, 4))
        with pytest.raises(ValidationError):
            WavefrontAligner(scheduler="magic")


class TestSimdPresets:
    def test_paper_lane_counts(self):
        assert AVX2.lanes == 16 and np.dtype(AVX2.dtype) == np.int16
        assert AVX512.lanes == 32 and np.dtype(AVX512.dtype) == np.int16
        assert SCALAR_PRESET.lanes == 1

    def test_max_safe_extent_bound(self):
        scheme = SCHEMES["global-linear"]
        ext = AVX2.max_safe_extent(scheme)
        # match=+2 dominates: 2*ext < 2**13
        assert 2 * ext < 2**13 <= 2 * (ext + 1)

    def test_wider_dtype_larger_extent(self):
        scheme = SCHEMES["global-linear"]
        assert SCALAR_PRESET.max_safe_extent(scheme) > AVX2.max_safe_extent(scheme)


class TestSimdBatchAligner:
    @pytest.mark.parametrize("preset", [AVX2, AVX512], ids=["avx2", "avx512"])
    def test_batch_matches_reference(self, preset):
        scheme = SCHEMES["global-linear"]
        rng = np.random.default_rng(7)
        count = preset.lanes * 2 + 5  # forces a partial tail block
        qs = rng.integers(0, 4, (count, 50)).astype(np.uint8)
        ss = rng.integers(0, 4, (count, 55)).astype(np.uint8)
        got = SimdBatchAligner(scheme, preset).score_batch(qs, ss)
        want = [score_reference(qs[k], ss[k], scheme) for k in range(count)]
        assert list(got) == want

    def test_all_schemes(self):
        rng = np.random.default_rng(8)
        qs = rng.integers(0, 4, (20, 30)).astype(np.uint8)
        ss = rng.integers(0, 4, (20, 33)).astype(np.uint8)
        for scheme in SCHEMES.values():
            got = SimdBatchAligner(scheme, AVX2).score_batch(qs, ss)
            want = [score_reference(qs[k], ss[k], scheme) for k in range(20)]
            assert list(got) == want

    def test_overflow_extent_rejected(self):
        scheme = SCHEMES["global-linear"]
        qs = np.zeros((16, 5000), dtype=np.uint8)
        with pytest.raises(ValidationError, match="overflow"):
            SimdBatchAligner(scheme, AVX2).score_batch(qs, qs)

    def test_score_pairs(self):
        scheme = SCHEMES["local-linear"]
        pairs = [("ACGTACGT", "ACGTTCGT"), ("AAAACCCC", "AAAAGGGG")]
        got = SimdBatchAligner(scheme, AVX2).score_pairs(pairs)
        want = [
            score_reference(encode(q), encode(s), scheme) for q, s in pairs
        ]
        assert list(got) == want

    def test_bad_shapes(self):
        with pytest.raises(ValidationError):
            SimdBatchAligner().score_batch(
                np.zeros((2, 5), np.uint8), np.zeros((3, 5), np.uint8)
            )
