"""Tests for banded global alignment (repro.core.banded)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.banded import banded_score
from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    simple_subst_scoring,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode
from repro.workloads import related_pair

SUB = simple_subst_scoring(2, -1)
LIN = global_scheme(linear_gap_scoring(SUB, -1))
AFF = global_scheme(affine_gap_scoring(SUB, -2, -1))


class TestBandedExactness:
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_full_band_equals_unbanded(self, scheme):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n, m = rng.integers(1, 60, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = max(n, m)
            assert banded_score(q, s, scheme, band) == score_reference(q, s, scheme)

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    @settings(max_examples=30, deadline=None)
    @given(
        q=st.text(alphabet="ACGT", min_size=1, max_size=40),
        s=st.text(alphabet="ACGT", min_size=1, max_size=40),
        extra=st.integers(0, 10),
    )
    def test_band_monotone_and_bounded(self, scheme, q, s, extra):
        # Widening the band can only improve the constrained optimum, and
        # it never exceeds the unbanded optimum.
        qe, se = encode(q), encode(s)
        lo_band = abs(len(q) - len(s)) + extra
        hi_band = max(len(q), len(s))
        narrow = banded_score(qe, se, scheme, lo_band)
        wide = banded_score(qe, se, scheme, hi_band)
        full = score_reference(qe, se, scheme)
        assert narrow <= wide <= full
        assert wide == full  # hi_band covers the whole matrix

    def test_similar_sequences_tight_band_is_exact(self):
        # The use case: near-identical genomes align within a narrow band.
        pair = related_pair(800, divergence=0.03, seed=5)
        full = score_reference(pair.query, pair.subject, LIN)
        band = abs(pair.query.size - pair.subject.size) + 40
        assert banded_score(pair.query, pair.subject, LIN, band) == full

    def test_band_too_narrow_cuts_score(self):
        # A big indel outside the band must lower the constrained score.
        q = encode("A" * 30 + "C" * 30)
        s = encode("A" * 30)
        full = score_reference(q, s, LIN)
        assert banded_score(q, s, LIN, 30) == full
        # band exactly |n-m| forces the pure-diagonal+edge path
        assert banded_score(q, s, LIN, 30) >= banded_score(q, s, AFF, 30)


def _masked_reference_banded(q, s, scheme, band):
    """Independent oracle: reference DP with out-of-band cells at −∞."""
    from repro.core.types import NEG_INF

    n, m = q.size, s.size
    gaps = scheme.scoring.gaps
    t = scheme.scoring.subst.table
    NI = NEG_INF // 2
    H = np.full((n + 1, m + 1), NI, dtype=np.int64)
    affine = gaps.is_affine
    if affine:
        go, ge = gaps.open, gaps.extend
        E = np.full((n + 1, m + 1), NI, dtype=np.int64)
        F = np.full((n + 1, m + 1), NI, dtype=np.int64)
    else:
        g = gaps.gap
    H[0, 0] = 0
    for j in range(1, min(m, band) + 1):
        H[0, j] = (go + ge * j) if affine else g * j
        if affine:
            F[0, j] = H[0, j]
    for i in range(1, n + 1):
        if i <= band:
            H[i, 0] = (go + ge * i) if affine else g * i
            if affine:
                E[i, 0] = H[i, 0]
        for j in range(max(1, i - band), min(m, i + band) + 1):
            if affine:
                E[i, j] = max(E[i - 1, j] + ge, H[i - 1, j] + go + ge)
                F[i, j] = max(F[i, j - 1] + ge, H[i, j - 1] + go + ge)
                H[i, j] = max(H[i - 1, j - 1] + t[q[i - 1], s[j - 1]], E[i, j], F[i, j])
            else:
                H[i, j] = max(
                    H[i - 1, j - 1] + t[q[i - 1], s[j - 1]],
                    H[i - 1, j] + g,
                    H[i, j - 1] + g,
                )
    return int(H[n, m])


class TestBandedAgainstMaskedOracle:
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_narrow_bands_exact(self, scheme):
        rng = np.random.default_rng(23)
        for _ in range(40):
            n, m = rng.integers(1, 40, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = abs(int(n) - int(m)) + int(rng.integers(0, 12))
            assert banded_score(q, s, scheme, band) == _masked_reference_banded(
                q, s, scheme, band
            )


class TestBandedValidation:
    def test_band_cannot_reach_corner(self):
        with pytest.raises(ValidationError, match="corner"):
            banded_score(encode("A" * 10), encode("A" * 3), LIN, 2)

    def test_non_global_rejected(self):
        scheme = local_scheme(linear_gap_scoring(SUB, -1))
        with pytest.raises(ValidationError, match="global"):
            banded_score(encode("ACGT"), encode("ACGT"), scheme, 4)

    def test_zero_band_square(self):
        # band 0 on equal lengths = pure diagonal (no gaps at all).
        q, s = encode("ACGTACGT"), encode("ACCTACGT")
        assert banded_score(q, s, LIN, 0) == 2 * 7 - 1
