"""Tests for banded global alignment (repro.core.banded)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.banded import band_cells, banded_score
from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode
from repro.workloads import related_pair

SUB = simple_subst_scoring(2, -1)
LIN = global_scheme(linear_gap_scoring(SUB, -1))
AFF = global_scheme(affine_gap_scoring(SUB, -2, -1))


class TestBandedExactness:
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_full_band_equals_unbanded(self, scheme):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n, m = rng.integers(1, 60, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = max(n, m)
            assert banded_score(q, s, scheme, band) == score_reference(q, s, scheme)

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    @settings(max_examples=30, deadline=None)
    @given(
        q=st.text(alphabet="ACGT", min_size=1, max_size=40),
        s=st.text(alphabet="ACGT", min_size=1, max_size=40),
        extra=st.integers(0, 10),
    )
    def test_band_monotone_and_bounded(self, scheme, q, s, extra):
        # Widening the band can only improve the constrained optimum, and
        # it never exceeds the unbanded optimum.
        qe, se = encode(q), encode(s)
        lo_band = abs(len(q) - len(s)) + extra
        hi_band = max(len(q), len(s))
        narrow = banded_score(qe, se, scheme, lo_band)
        wide = banded_score(qe, se, scheme, hi_band)
        full = score_reference(qe, se, scheme)
        assert narrow <= wide <= full
        assert wide == full  # hi_band covers the whole matrix

    def test_similar_sequences_tight_band_is_exact(self):
        # The use case: near-identical genomes align within a narrow band.
        pair = related_pair(800, divergence=0.03, seed=5)
        full = score_reference(pair.query, pair.subject, LIN)
        band = abs(pair.query.size - pair.subject.size) + 40
        assert banded_score(pair.query, pair.subject, LIN, band) == full

    def test_band_too_narrow_cuts_score(self):
        # A big indel outside the band must lower the constrained score.
        q = encode("A" * 30 + "C" * 30)
        s = encode("A" * 30)
        full = score_reference(q, s, LIN)
        assert banded_score(q, s, LIN, 30) == full
        # band exactly |n-m| forces the pure-diagonal+edge path
        assert banded_score(q, s, LIN, 30) >= banded_score(q, s, AFF, 30)


def _masked_reference_banded(q, s, scheme, band):
    """Independent oracle: reference DP with out-of-band cells at −∞.

    Supports global and semiglobal schemes (semiglobal: borders inside the
    band initialise to 0, optimum over in-band last-row/last-column cells).
    """
    from repro.core.types import NEG_INF, AlignmentType

    n, m = q.size, s.size
    gaps = scheme.scoring.gaps
    t = scheme.scoring.subst.table
    NI = NEG_INF // 2
    semi = scheme.alignment_type is AlignmentType.SEMIGLOBAL
    H = np.full((n + 1, m + 1), NI, dtype=np.int64)
    affine = gaps.is_affine
    if affine:
        go, ge = gaps.open, gaps.extend
        E = np.full((n + 1, m + 1), NI, dtype=np.int64)
        F = np.full((n + 1, m + 1), NI, dtype=np.int64)
    else:
        g = gaps.gap
    H[0, 0] = 0
    for j in range(1, min(m, band) + 1):
        H[0, j] = 0 if semi else ((go + ge * j) if affine else g * j)
        if affine and not semi:
            F[0, j] = H[0, j]
    for i in range(1, n + 1):
        if i <= band:
            H[i, 0] = 0 if semi else ((go + ge * i) if affine else g * i)
            if affine and not semi:
                E[i, 0] = H[i, 0]
        for j in range(max(1, i - band), min(m, i + band) + 1):
            if affine:
                E[i, j] = max(E[i - 1, j] + ge, H[i - 1, j] + go + ge)
                F[i, j] = max(F[i, j - 1] + ge, H[i, j - 1] + go + ge)
                H[i, j] = max(H[i - 1, j - 1] + t[q[i - 1], s[j - 1]], E[i, j], F[i, j])
            else:
                H[i, j] = max(
                    H[i - 1, j - 1] + t[q[i - 1], s[j - 1]],
                    H[i - 1, j] + g,
                    H[i, j - 1] + g,
                )
    if not semi:
        return int(H[n, m])
    best = NI
    for j in range(m + 1):
        if abs(j - n) <= band:
            best = max(best, int(H[n, j]))
    for i in range(n + 1):
        if abs(m - i) <= band:
            best = max(best, int(H[i, m]))
    return best


class TestBandedAgainstMaskedOracle:
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_narrow_bands_exact(self, scheme):
        rng = np.random.default_rng(23)
        for _ in range(40):
            n, m = rng.integers(1, 40, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = abs(int(n) - int(m)) + int(rng.integers(0, 12))
            assert banded_score(q, s, scheme, band) == _masked_reference_banded(
                q, s, scheme, band
            )


HARSH = simple_subst_scoring(2, -10)
HARSH_AFF = global_scheme(affine_gap_scoring(HARSH, -2, -1))
SEMI_LIN = semiglobal_scheme(linear_gap_scoring(SUB, -1))
SEMI_AFF = semiglobal_scheme(affine_gap_scoring(SUB, -2, -1))


class TestBorderLeakRegression:
    def test_affine_narrow_band_all_mismatch(self):
        """Out-of-band column-0 border cells must not leak into the band.

        All-mismatch sequences with harsh mismatch and cheap affine gaps:
        the optimal *unconstrained* path hugs the matrix borders (two long
        gap runs), which a band of 1 forbids — the old implementation
        seeded border cells for rows up to band+1 and returned the
        out-of-band two-run score.
        """
        q, s = encode("A" * 6), encode("C" * 6)
        assert banded_score(q, s, HARSH_AFF, 1) == _masked_reference_banded(
            q, s, HARSH_AFF, 1
        )
        # The in-band optimum is the gap staircase, not the border path.
        assert banded_score(q, s, HARSH_AFF, 1) < 2 * (-2) + 12 * (-1)

    @pytest.mark.parametrize(
        "scheme",
        [
            global_scheme(linear_gap_scoring(HARSH, -1)),
            HARSH_AFF,
            semiglobal_scheme(affine_gap_scoring(HARSH, -3, -1)),
        ],
        ids=["linear", "affine", "semiglobal-affine"],
    )
    def test_harsh_scoring_matches_masked_oracle(self, scheme):
        from repro.core.types import AlignmentType

        rng = np.random.default_rng(31)
        semi = scheme.alignment_type is AlignmentType.SEMIGLOBAL
        for _ in range(25):
            n, m = rng.integers(1, 25, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            extra = int(rng.integers(0, 8))
            band = extra if semi else abs(int(n) - int(m)) + extra
            assert banded_score(q, s, scheme, band) == _masked_reference_banded(
                q, s, scheme, band
            )


class TestBandedSemiglobal:
    @pytest.mark.parametrize("scheme", [SEMI_LIN, SEMI_AFF], ids=["linear", "affine"])
    def test_narrow_bands_match_masked_oracle(self, scheme):
        rng = np.random.default_rng(47)
        for _ in range(30):
            n, m = rng.integers(1, 35, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = int(rng.integers(0, 12))  # any band is feasible
            assert banded_score(q, s, scheme, band) == _masked_reference_banded(
                q, s, scheme, band
            )

    @pytest.mark.parametrize("scheme", [SEMI_LIN, SEMI_AFF], ids=["linear", "affine"])
    def test_full_band_equals_unbanded(self, scheme):
        rng = np.random.default_rng(53)
        for _ in range(15):
            n, m = rng.integers(1, 45, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            band = max(int(n), int(m))
            assert banded_score(q, s, scheme, band) == score_reference(q, s, scheme)

    def test_query_in_window_placement(self):
        # The search use case: a query sitting at an offset inside a
        # window is found exactly when the band covers the offset.
        rng = np.random.default_rng(59)
        window = rng.integers(0, 4, 120).astype(np.uint8)
        query = window[70:100].copy()
        full = score_reference(query, window, SEMI_LIN)
        assert full == 2 * 30  # perfect placement
        assert banded_score(query, window, SEMI_LIN, 90) == full
        # A band far below the 70-base placement offset cannot reach it.
        assert banded_score(query, window, SEMI_LIN, 5) < full

    def test_band_wider_than_everything(self):
        q = encode("ACGT")
        s = encode("ACGTACGT")
        assert banded_score(q, s, SEMI_LIN, 10_000) == score_reference(q, s, SEMI_LIN)


class TestWiden:
    def test_narrow_band_raises_without_widen(self):
        with pytest.raises(ValidationError, match="widen"):
            banded_score(encode("A" * 10), encode("A" * 3), LIN, 2)

    def test_widen_uses_minimum_feasible_band(self):
        q, s = encode("ACGTACGTAC"), encode("ACG")
        assert banded_score(q, s, LIN, 2, widen=True) == banded_score(q, s, LIN, 7)
        assert banded_score(q, s, AFF, 0, widen=True) == banded_score(q, s, AFF, 7)

    def test_widen_noop_for_feasible_band(self):
        q, s = encode("ACGTAC"), encode("ACGTTC")
        assert banded_score(q, s, LIN, 2, widen=True) == banded_score(q, s, LIN, 2)

    def test_negative_band_rejected(self):
        with pytest.raises(ValidationError, match=">= 0"):
            banded_score(encode("ACGT"), encode("ACGT"), LIN, -1)
        with pytest.raises(ValidationError, match=">= 0"):
            band_cells(4, 4, -1)


class TestBandCells:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(61)
        for _ in range(40):
            n, m, b = (int(x) for x in rng.integers(1, 20, 3))
            brute = sum(
                1
                for i in range(1, n + 1)
                for j in range(1, m + 1)
                if abs(j - i) <= b
            )
            assert band_cells(n, m, b) == brute

    def test_full_band_is_full_matrix(self):
        assert band_cells(12, 7, 12) == 12 * 7

    def test_zero_band_is_diagonal(self):
        assert band_cells(9, 9, 0) == 9
        assert band_cells(9, 4, 0) == 4


class TestBandedValidation:
    def test_band_cannot_reach_corner(self):
        with pytest.raises(ValidationError, match="corner"):
            banded_score(encode("A" * 10), encode("A" * 3), LIN, 2)

    def test_local_rejected(self):
        scheme = local_scheme(linear_gap_scoring(SUB, -1))
        with pytest.raises(ValidationError, match="global"):
            banded_score(encode("ACGT"), encode("ACGT"), scheme, 4)

    def test_semiglobal_any_band_feasible(self):
        # Free end gaps: even band 0 with unequal lengths is legal.
        assert isinstance(banded_score(encode("A" * 10), encode("A" * 3), SEMI_LIN, 0), int)

    def test_zero_band_square(self):
        # band 0 on equal lengths = pure diagonal (no gaps at all).
        q, s = encode("ACGTACGT"), encode("ACCTACGT")
        assert banded_score(q, s, LIN, 0) == 2 * 7 - 1


class TestBandedCapability:
    def test_inline_backends_declare_banded(self):
        from repro.core.backend import capability_matrix

        caps = capability_matrix()
        for name in ("rowscan", "scalar", "reference"):
            assert caps[name].banded
        assert not caps["tiled"].banded

    def test_aligner_banded_score(self):
        from repro.core import Aligner

        a = Aligner(global_scheme(linear_gap_scoring(SUB, -1)))
        q, s = "ACGTACGTAC", "ACGTTCGTAC"
        assert a.banded_score(q, s, 10) == a.score(q, s)

    def test_aligner_banded_unsupported_backend(self):
        from repro.core import Aligner

        a = Aligner(backend="tiled")
        with pytest.raises(ValidationError, match="banded"):
            a.banded_score("ACGT", "ACGT", 4)

    def test_plan_score_banded(self):
        from repro.engine import ExecutionEngine, PlanCache

        eng = ExecutionEngine(plan_cache=PlanCache(), backend="rowscan")
        plan = eng.plan_for("rowscan")
        q, s = encode("ACGTACGT"), encode("ACCTACGT")
        assert plan.score_banded(q, s, 8) == score_reference(q, s, eng.scheme)
        tiled = eng.plan_for("tiled")
        with pytest.raises(ValidationError, match="banded"):
            tiled.score_banded(q, s, 8)
