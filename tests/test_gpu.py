"""Tests for the simulated GPU backend (repro.gpu)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.gpu import (
    TITAN_V,
    GlobalMemory,
    GpuAligner,
    MatrixViewCoal,
    PerfCounters,
    SharedMemory,
    coalesced_transactions,
    relax_tile_striped,
)
from repro.cpu.tiles import initial_borders, relax_tile
from repro.util.checks import ValidationError
from repro.util.encoding import encode

SUB = simple_subst_scoring(2, -1)
SCHEMES = {
    "global-linear": global_scheme(linear_gap_scoring(SUB, -1)),
    "global-affine": global_scheme(affine_gap_scoring(SUB, -2, -1)),
    "local-linear": local_scheme(linear_gap_scoring(SUB, -1)),
    "local-affine": local_scheme(affine_gap_scoring(SUB, -2, -1)),
    "semiglobal-linear": semiglobal_scheme(linear_gap_scoring(SUB, -1)),
    "semiglobal-affine": semiglobal_scheme(affine_gap_scoring(SUB, -2, -1)),
}


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestGpuFunctional:
    def test_matches_reference(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(hash(name) % 2**32)
        for _ in range(6):
            n, m = rng.integers(2, 130, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            assert GpuAligner(scheme, tile=(32, 48)).score(q, s) == score_reference(
                q, s, scheme
            )

    def test_striped_tile_equals_rowsweep_tile(self, name):
        # The GPU anti-diagonal dataflow must produce identical borders to
        # the CPU row-sweep tile kernel.
        scheme = SCHEMES[name]
        rng = np.random.default_rng(5)
        q = rng.integers(0, 4, 40).astype(np.uint8)
        s = rng.integers(0, 4, 55).astype(np.uint8)
        borders = initial_borders(scheme, 40, 55, 1, 1)
        cpu = relax_tile(q, s, scheme, borders)
        borders2 = initial_borders(scheme, 40, 55, 1, 1)
        gpu = relax_tile_striped(q, s, scheme, borders2, stripe_height=16)
        np.testing.assert_array_equal(cpu.bottom_h, gpu.bottom_h)
        np.testing.assert_array_equal(cpu.right_h, gpu.right_h)
        assert int(cpu.best) == int(gpu.best)


class TestGpuDataflow:
    @settings(max_examples=12, deadline=None)
    @given(
        q=st.text(alphabet="ACGT", min_size=2, max_size=80),
        s=st.text(alphabet="ACGT", min_size=2, max_size=80),
        stripe=st.sampled_from([4, 16, 64]),
    )
    def test_stripe_height_invariance(self, q, s, stripe):
        scheme = SCHEMES["global-affine"]
        borders = initial_borders(scheme, len(q), len(s), 1, 1)
        res = relax_tile_striped(
            encode(q), encode(s), scheme, borders, stripe_height=stripe
        )
        assert int(res.bottom_h[-1]) == score_reference(encode(q), encode(s), scheme)

    def test_counters_accumulate(self):
        scheme = SCHEMES["global-linear"]
        c = PerfCounters()
        borders = initial_borders(scheme, 64, 64, 1, 1)
        relax_tile_striped(
            encode("ACGT" * 16), encode("ACGT" * 16), scheme, borders, 16, c
        )
        assert c.cells == 64 * 64
        assert c.stripes == 4
        # 4 stripes of (16 + 64 - 1) steps each
        assert c.diag_steps == 4 * 79
        assert c.global_reads > 0 and c.global_writes > 0

    def test_launch_per_diagonal(self):
        scheme = SCHEMES["global-linear"]
        ga = GpuAligner(scheme, tile=(32, 32))
        q = np.zeros(96, dtype=np.uint8)  # 3x3 tiles -> 5 diagonals
        ga.score(q, q)
        assert ga.counters.kernel_launches == 5
        assert ga.counters.cells == 96 * 96


class TestDeviceModel:
    def test_long_genome_calibration(self):
        ga = GpuAligner(SCHEMES["global-linear"])
        g = ga.model_gcups_at(4_411_532, 4_641_652)
        assert 170 < g < 200  # paper anchor ~189

    def test_affine_slower(self):
        lin = GpuAligner(SCHEMES["global-linear"]).model_gcups_at(1_000_000, 1_000_000)
        aff = GpuAligner(SCHEMES["global-affine"]).model_gcups_at(1_000_000, 1_000_000)
        assert aff < lin

    def test_read_batch_calibration(self):
        g = GpuAligner(SCHEMES["global-linear"]).model_gcups_batch(12_500_000, 150, 166)
        assert 210 < g < 260  # paper anchor ~241

    def test_small_problem_underutilizes(self):
        ga = GpuAligner(SCHEMES["global-linear"])
        small = ga.model_gcups_at(2_000, 2_000)
        big = ga.model_gcups_at(2_000_000, 2_000_000)
        assert small < big / 3

    def test_model_seconds_tracked(self):
        ga = GpuAligner(SCHEMES["global-linear"], tile=(64, 64))
        q = np.zeros(256, dtype=np.uint8)
        ga.score(q, q)
        assert ga.model_seconds > 0
        assert ga.model_gcups > 0


class TestMemorySpaces:
    def test_coalesced_transactions(self):
        assert coalesced_transactions(32) == 1
        assert coalesced_transactions(33) == 2
        assert coalesced_transactions(32, coalesced=False) == 32

    def test_global_memory_counting(self):
        c = PerfCounters()
        mem = GlobalMemory(c)
        mem.alloc("a", (64,))
        mem.read("a")
        assert c.global_reads == 2  # 64 lanes / 32-warp
        mem.write("a", slice(0, 32), 1)
        assert c.global_writes == 1
        mem.read("a", slice(0, 64), coalesced=False)
        assert c.global_reads == 2 + 64

    def test_global_double_alloc(self):
        mem = GlobalMemory(PerfCounters())
        mem.alloc("a", (4,))
        with pytest.raises(ValidationError):
            mem.alloc("a", (4,))
        mem.free("a")
        mem.alloc("a", (4,))

    def test_shared_budget_enforced(self):
        sm = SharedMemory(PerfCounters(), budget_bytes=1024)
        sm.alloc("ok", (100,), dtype=np.int64)
        with pytest.raises(ValidationError, match="budget"):
            sm.alloc("too-big", (100,), dtype=np.int64)

    def test_shared_access_counting(self):
        c = PerfCounters()
        sm = SharedMemory(c)
        sm.alloc("row", (128,))
        sm.read("row")
        sm.write("row", slice(0, 10), 7)
        assert c.shared_reads == 128 and c.shared_writes == 10

    def test_coalesced_matrix_view_roundtrip(self):
        c = PerfCounters()
        mem = GlobalMemory(c)
        view = MatrixViewCoal(mem, "M", height=8, width=16)
        i = np.arange(4)
        j = np.arange(4)
        view.write(i, j, np.array([1, 2, 3, 4]))
        np.testing.assert_array_equal(view.read(i, j), [1, 2, 3, 4])

    def test_titan_v_spec(self):
        assert TITAN_V.sms == 80 and TITAN_V.watts == 250.0
