"""Tests for repro.util (encoding, rng, checks)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    ALPHABET,
    ValidationError,
    check_in,
    check_positive,
    check_sequence,
    decode,
    encode,
    make_rng,
    pack_2bit,
    reverse_complement,
    spawn_rngs,
    unpack_2bit,
)

dna_text = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncoding:
    def test_roundtrip_simple(self):
        assert decode(encode("ACGT")) == "ACGT"

    def test_lowercase_accepted(self):
        assert decode(encode("acgt")) == "ACGT"

    def test_bytes_accepted(self):
        assert decode(encode(b"GATTACA")) == "GATTACA"

    def test_code_array_passthrough(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        out = encode(codes)
        assert out is codes

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError, match="invalid DNA"):
            encode("ACGN")

    def test_invalid_codes_rejected(self):
        with pytest.raises(ValueError):
            encode(np.array([0, 9], dtype=np.uint8))

    @given(dna_text)
    def test_roundtrip_property(self, s):
        assert decode(encode(s)) == s

    def test_alphabet_order(self):
        assert ALPHABET == "ACGT"
        assert list(encode("ACGT")) == [0, 1, 2, 3]


class TestReverseComplement:
    def test_simple(self):
        assert decode(reverse_complement(encode("AACG"))) == "CGTT"

    @given(dna_text.filter(lambda s: len(s) > 0))
    def test_involution(self, s):
        codes = encode(s)
        assert decode(reverse_complement(reverse_complement(codes))) == s


class TestPack2Bit:
    @given(dna_text)
    def test_roundtrip(self, s):
        codes = encode(s)
        packed, n = pack_2bit(codes)
        assert n == len(s)
        assert packed.size == (n + 3) // 4
        np.testing.assert_array_equal(unpack_2bit(packed, n), codes)

    def test_packing_density(self):
        packed, _ = pack_2bit(encode("ACGTACGT"))
        assert packed.size == 2


class TestRng:
    def test_default_deterministic(self):
        a = make_rng().integers(0, 1000, 10)
        b = make_rng().integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g

    def test_spawn_independent(self):
        r1, r2 = spawn_rngs(42, 2)
        assert not np.array_equal(r1.integers(0, 1000, 20), r2.integers(0, 1000, 20))

    def test_spawn_deterministic(self):
        a = spawn_rngs(42, 3)[2].integers(0, 1000, 5)
        b = spawn_rngs(42, 3)[2].integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)


class TestChecks:
    def test_check_sequence_ok(self):
        seq = encode("ACGT")
        assert check_sequence(seq) is seq

    def test_check_sequence_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_sequence(np.array([], dtype=np.uint8))

    def test_check_sequence_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_sequence(np.zeros((2, 2), dtype=np.uint8))

    def test_check_sequence_bad_dtype(self):
        with pytest.raises(ValidationError, match="uint8"):
            check_sequence(np.array([0, 1], dtype=np.int64))

    def test_check_sequence_bad_codes(self):
        with pytest.raises(ValidationError, match="0..3"):
            check_sequence(np.array([0, 7], dtype=np.uint8))

    def test_check_positive(self):
        assert check_positive(3, "x") == 3
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_check_in(self):
        assert check_in("a", {"a", "b"}, "x") == "a"
        with pytest.raises(ValidationError):
            check_in("c", {"a", "b"}, "x")
