"""Backend parity: every registered backend reproduces the reference DP.

The unified frontend's contract is that *any* name in the registry (plus
the inline strategies) gives identical scores on the full scheme grid —
alignment type × gap model — and that the ``core`` family also agrees
across score dtypes.  Backends whose declared capabilities exclude a
scheme (e.g. SSW is local-only) must refuse it loudly, not mis-compute.
"""

import numpy as np
import pytest

from repro.core import Aligner
from repro.core.backend import (
    INLINE_BACKENDS,
    available_backends,
    capability_matrix,
    create_backend,
)
from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode

SUB = simple_subst_scoring(2, -1)
SCHEMES = {
    f"{kind}-{gap}": builder(gaps)
    for kind, builder in (
        ("global", global_scheme),
        ("local", local_scheme),
        ("semiglobal", semiglobal_scheme),
    )
    for gap, gaps in (
        ("linear", linear_gap_scoring(SUB, -1)),
        ("affine", affine_gap_scoring(SUB, -3, -1)),
    )
}

BACKENDS = sorted(available_backends() - {"auto"})


def _pairs(seed=7, count=3):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(9, 40))
        m = int(rng.integers(9, 40))
        out.append(
            (
                "".join(rng.choice(list("ACGT"), n)),
                "".join(rng.choice(list("ACGT"), m)),
            )
        )
    return out


class TestRegistry:
    def test_expected_names_registered(self):
        names = available_backends()
        for required in (
            "rowscan",
            "scalar",
            "reference",
            "core",
            "tiled",
            "simd",
            "gpu",
            "fpga",
            "seqan",
            "parasail",
            "ssw",
            "nvbio",
            "auto",
        ):
            assert required in names

    def test_capability_matrix_covers_registry(self):
        caps = capability_matrix()
        for name in available_backends() - {"auto"}:
            assert name in caps
            assert caps[name].name == name

    def test_comparators_and_simulated_flagged(self):
        caps = capability_matrix()
        assert caps["gpu"].simulated and caps["fpga"].simulated
        for name in ("seqan", "parasail", "ssw", "nvbio"):
            assert caps[name].comparator

    def test_every_backend_satisfies_protocol(self):
        from repro.core.backend import Backend
        from repro.core.scoring import default_scheme

        caps = capability_matrix()
        for name in available_backends() - {"auto"}:
            scheme = (
                default_scheme()
                if caps[name].supports_scheme(default_scheme())
                else SCHEMES["local-linear"]
            )
            inst = create_backend(name, scheme)
            assert isinstance(inst, Backend), name


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheme_key", sorted(SCHEMES))
class TestParityGrid:
    def test_scores_match_reference(self, backend, scheme_key):
        scheme = SCHEMES[scheme_key]
        caps = capability_matrix()[backend]
        if not caps.supports_scheme(scheme):
            with pytest.raises(ValidationError):
                Aligner(scheme, backend=backend).score("ACGT", "ACGT")
            return
        a = Aligner(scheme, backend=backend)
        for q, s in _pairs():
            expected = score_reference(encode(q), encode(s), scheme)
            assert a.score(q, s) == expected, (backend, scheme_key, q, s)

    def test_batch_matches_reference(self, backend, scheme_key):
        scheme = SCHEMES[scheme_key]
        caps = capability_matrix()[backend]
        if not caps.supports_scheme(scheme):
            pytest.skip(f"{backend} does not support {scheme_key}")
        pairs = _pairs(seed=11, count=5)
        qs, ss = [p[0] for p in pairs], [p[1] for p in pairs]
        out = Aligner(scheme, backend=backend).score_batch(qs, ss)
        expected = [score_reference(encode(q), encode(s), scheme) for q, s in pairs]
        assert list(out) == expected

    def test_align_matches_reference_score(self, backend, scheme_key):
        scheme = SCHEMES[scheme_key]
        caps = capability_matrix()[backend]
        if not caps.supports_scheme(scheme):
            pytest.skip(f"{backend} does not support {scheme_key}")
        q, s = _pairs(seed=23, count=1)[0]
        res = Aligner(scheme, backend=backend).align(q, s)
        assert res.score == score_reference(encode(q), encode(s), scheme)


@pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
def test_core_dtype_grid(dtype):
    """The staged kernel path agrees across declared score widths."""
    for scheme in SCHEMES.values():
        a = Aligner(scheme, backend="rowscan", dtype=dtype)
        for q, s in _pairs(seed=3, count=2):
            assert a.score(q, s) == score_reference(encode(q), encode(s), scheme)


def test_inline_names_are_not_factories():
    """Inline strategies resolve to Aligner modes, not registry entries."""
    for name in INLINE_BACKENDS:
        inst = create_backend(name)
        assert isinstance(inst, Aligner)
        assert inst.backend == name
