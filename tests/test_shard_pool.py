"""Tests for the persistent shard worker pool (repro.shard.pool / shm).

Covers the two satellite checklists of the pool PR:

* shared-memory lifecycle — the segment is unlinked on pool close *and*
  after worker crashes, no ``/dev/shm`` entry leaks, double-close is
  idempotent, and a worker attaching after a reference swap sees the new
  reference (old hits impossible);
* pool reuse — two warm ``search_topk`` calls return bit-identical
  results to two fresh one-shot ``ShardedSearch`` runs and to the
  ``exhaustive_topk`` oracle, and a worker killed between calls is
  respawned (or surfaced) rather than wedging the next call.
"""

import glob
import os
import pickle
import time

import pytest

from repro.engine import EngineConfig
from repro.search import SearchConfig, search_topk
from repro.search.pipeline import exhaustive_topk
from repro.shard import (
    ChunkPayload,
    ShardedSearch,
    ShardError,
    ShardPlan,
    ShardWorkerError,
    ShardWorkerPool,
    SharedRecordPayload,
    build_pool_payloads,
    fingerprint_database,
    publish_records,
)
from repro.shard.shm import SEGMENT_PREFIX, attach_segment, fingerprint_records
from repro.util.checks import ReproError
from repro.util.encoding import encode
from repro.workloads import FastaRecord, chunk_sequence, random_genome

from helpers import hit_keys, planted_instance


def _shm_entries():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


class _FailingSwapPayload:
    """Swap payload whose worker-side attach always raises.

    Module-level so it pickles across the command queue; the worker's
    ``_attach`` finds the ``attach`` method and the raise surfaces as an
    ``("error", ...)`` reply mid-swap.
    """

    def attach(self):
        raise RuntimeError("injected swap failure")


def _oracle_keys(per_query):
    """Reduced identity for oracle parity: the prefilterless oracle never
    counts seeds, so compare everything but ``h.seeds`` (as test_search
    does)."""
    return [[(h.start, h.score, h.chunk_id) for h in hits] for hits in per_query]


def _plan(num_shards=2, **search):
    return ShardPlan(
        num_shards=num_shards,
        search=SearchConfig(**search),
        start_method="fork",
    )


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(_shm_entries())
    yield
    leaked = set(_shm_entries()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestSharedMemoryLifecycle:
    def _records(self, n=3, length=400, seed=50):
        return tuple(
            (f"r{i}", encode(random_genome(length, seed=seed + i))) for i in range(n)
        )

    def test_publish_attach_roundtrip_readonly(self):
        records = self._records()
        seg = publish_records(records)
        assert os.path.exists(f"/dev/shm/{seg.name}")
        ref = attach_segment(seg.meta)
        got = ref.records()
        assert [name for name, _ in got] == [name for name, _ in records]
        for (_, view), (_, codes) in zip(got, records):
            assert (view == codes).all()
            assert not view.flags.writeable
        del got, view, codes  # exported views would pin the worker mapping
        ref.close()
        seg.destroy()
        assert not os.path.exists(f"/dev/shm/{seg.name}")

    def test_destroy_and_close_are_idempotent(self):
        seg = publish_records(self._records(1))
        seg.destroy()
        seg.destroy()
        seg.close()
        seg.unlink()  # no FileNotFoundError either

    def test_unlink_while_attached_keeps_memory_alive(self):
        """POSIX semantics the swap relies on: readers outlive the name."""
        records = self._records(1)
        seg = publish_records(records)
        ref = attach_segment(seg.meta)
        seg.destroy()
        assert not os.path.exists(f"/dev/shm/{seg.name}")
        (_, view), = ref.records()
        assert (view == records[0][1]).all()  # still readable, name gone
        del view
        ref.close()

    def test_attach_after_destroy_is_clean_error(self):
        seg = publish_records(self._records(1))
        meta = seg.meta
        seg.destroy()
        with pytest.raises(ReproError, match="gone"):
            attach_segment(meta)

    def test_meta_is_picklable_and_fingerprinted(self):
        records = self._records()
        seg = publish_records(records)
        try:
            clone = pickle.loads(pickle.dumps(seg.meta))
            assert clone == seg.meta
            assert clone.fingerprint == seg.meta.fingerprint
            other = publish_records(self._records(seed=99))
            try:
                assert other.meta.fingerprint != seg.meta.fingerprint
            finally:
                other.destroy()
        finally:
            seg.destroy()

    def test_fingerprint_encoding_is_injective(self):
        """Field boundaries must be hashed: shifting bytes between the
        name and the codes (or between adjacent records) must change the
        fingerprint, else a collision makes a pool skip a needed swap."""
        import numpy as np

        a = fingerprint_records((("ab", np.array([1, 2], dtype=np.uint8)),))
        b = fingerprint_records((("a", np.array([0x62, 1, 2], dtype=np.uint8)),))
        assert a != b
        one = fingerprint_records((("r", np.array([1, 2, 3], dtype=np.uint8)),))
        split = fingerprint_records(
            (
                ("r", np.array([1, 2], dtype=np.uint8)),
                ("r", np.array([3], dtype=np.uint8)),
            )
        )
        assert one != split

    def test_empty_records_publish_minimal_segment(self):
        seg = publish_records(())
        try:
            assert seg.meta.size == 1 and seg.meta.records == ()
        finally:
            seg.destroy()

    def test_fingerprint_database_matches_publication(self):
        ref = random_genome(2000, seed=51)
        plan = _plan()
        payloads, seg, fingerprint = build_pool_payloads(ref, plan)
        try:
            assert all(isinstance(p, SharedRecordPayload) for p in payloads)
            assert fingerprint == seg.meta.fingerprint
            assert fingerprint_database(ref) == fingerprint
            assert fingerprint_database(random_genome(2000, seed=52)) != fingerprint
        finally:
            seg.destroy()

    def test_chunk_database_ships_pickled_without_segment(self):
        chunks = list(chunk_sequence(random_genome(1500, seed=53), 150, 30))
        payloads, seg, fingerprint = build_pool_payloads(iter(chunks), _plan())
        assert seg is None
        assert all(isinstance(p, ChunkPayload) for p in payloads)
        assert fingerprint == fingerprint_database(chunks)


class TestPoolLifecycle:
    def test_segment_unlinked_on_close_and_double_close(self):
        ref, queries, _ = planted_instance(8000, 3, 80, seed=54)
        pool = ShardWorkerPool(ref, plan=_plan(k=3), timeout=120)
        pool.start()
        name = pool.segment_name
        assert name and os.path.exists(f"/dev/shm/{name}")
        pool.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        pool.close()  # idempotent
        with pytest.raises(ShardError, match="closed"):
            pool.search_topk(queries)

    def test_segment_unlinked_after_worker_crashes(self):
        ref, _, _ = planted_instance(6000, 2, 80, seed=55)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            pool.start()
            name = pool.segment_name
            for proc in pool._procs:
                proc.terminate()
                proc.join()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_worker_startup_error_does_not_leak_segment(self):
        ref, queries, _ = planted_instance(4000, 2, 80, seed=56)
        plan = ShardPlan(
            num_shards=2,
            search=SearchConfig(k=3),
            engine=EngineConfig(backend="no-such-backend"),
            start_method="fork",
        )
        pool = ShardWorkerPool(ref, plan=plan, timeout=120)
        with pytest.raises(ShardWorkerError, match="worker raised"):
            pool.start()
        assert pool.closed  # a failed start closes the pool

    def test_swap_unlinks_old_segment_and_serves_new_reference(self):
        ref1, queries1, _ = planted_instance(8000, 3, 80, seed=57)
        ref2, queries2, _ = planted_instance(9000, 3, 80, seed=58)
        with ShardWorkerPool(ref1, plan=_plan(k=3), timeout=120) as pool:
            before = pool.search_topk(queries1)
            old = pool.segment_name
            pool.swap_reference(ref2)
            assert pool.segment_name != old
            assert not os.path.exists(f"/dev/shm/{old}")
            # Attach-after-swap: results now come from ref2, matching a
            # single-process run over ref2 exactly.
            got = pool.search_topk(queries2)
            assert hit_keys(got) == hit_keys(search_topk(queries2, ref2, k=3))
            assert pool.serves(fingerprint_database(ref2))
            assert not pool.serves(fingerprint_database(ref1))
            assert pool.stats.swaps == 1
        assert hit_keys(before) == hit_keys(search_topk(queries1, ref1, k=3))

    def test_failed_swap_breaks_pool_and_old_reference_survives(self, monkeypatch):
        """A swap one worker fails must not leave a mixed-reference pool.

        Workers that acked the swap sit on the new reference; the pool
        keeps the old payloads.  The failure must break the pool so the
        next call respawns everyone onto the old reference — results
        after a failed swap match the old reference exactly, never a
        merge across both.
        """
        import repro.shard.pool as pool_mod

        ref1, queries, _ = planted_instance(8000, 3, 80, seed=71)
        ref2, _, _ = planted_instance(9000, 3, 80, seed=72)
        with ShardWorkerPool(ref1, plan=_plan(k=3), timeout=120) as pool:
            first = pool.search_topk(queries)
            entries_before = set(_shm_entries())
            real_build = pool_mod.build_pool_payloads

            def sabotage(database, plan):
                payloads, segment, fingerprint = real_build(database, plan)
                payloads[1] = _FailingSwapPayload()
                return payloads, segment, fingerprint

            monkeypatch.setattr(pool_mod, "build_pool_payloads", sabotage)
            with pytest.raises(ShardWorkerError, match="injected swap failure"):
                pool.swap_reference(ref2)
            monkeypatch.undo()
            # New segment destroyed, old one intact; pool still serves ref1.
            assert set(_shm_entries()) == entries_before
            assert pool.serves(fingerprint_database(ref1))
            assert not pool.serves(fingerprint_database(ref2))
            # Every worker respawns onto the old payloads: bit-identical
            # to the pre-swap answer, no half-swapped worker surviving.
            after = pool.search_topk(queries)
            assert pool.stats.respawns == pool.num_shards
            assert hit_keys(after) == hit_keys(first)
            assert hit_keys(after) == hit_keys(search_topk(queries, ref1, k=3))

    def test_ping_and_report(self):
        ref, _, _ = planted_instance(4000, 2, 80, seed=59)
        with ShardWorkerPool(ref, plan=_plan(), timeout=120) as pool:
            rtts = pool.ping()
            assert len(rtts) == 2 and all(r >= 0 for r in rtts)
            assert "Shard worker pool" in pool.report()
            assert pool.stats.pings == 1

    def test_max_concurrent_is_host_clamped_and_overridable(self):
        ref, queries, _ = planted_instance(6000, 2, 60, seed=60)
        cores = os.cpu_count() or 1
        pool = ShardWorkerPool(ref, plan=_plan(num_shards=4, k=2), timeout=120)
        assert pool.max_concurrent == min(4, cores)
        pool.close()
        with ShardWorkerPool(
            ref, plan=_plan(num_shards=4, k=2), timeout=120, max_concurrent=1
        ) as pool:
            got = pool.search_topk(queries)
            assert hit_keys(got) == hit_keys(search_topk(queries, ref, k=2))


class TestPoolReuse:
    def test_warm_calls_bit_identical_to_fresh_runs_and_oracle(self):
        """Acceptance: warm reuse changes nothing about the answer."""
        ref, queries, _ = planted_instance(6000, 3, 60, seed=61)
        # Full verify + a floor, the repo's oracle-parity convention: the
        # default banded tail may differ from the oracle on sub-band
        # shoulder placements (as test_search pins separately).
        kw = dict(k=3, min_score=80, min_seeds=1, verify="full")
        with ShardWorkerPool(ref, plan=_plan(**kw), timeout=120) as pool:
            warm1 = pool.search_topk(queries)
            warm2 = pool.search_topk(queries)
            assert pool.stats.warm_searches == 1
            assert pool.stats.cold_searches == 1
            assert pool.stats.spawns == 2  # workers spawned exactly once
        fresh1 = ShardedSearch(plan=_plan(**kw), timeout=120).search_topk(queries, ref)
        fresh2 = ShardedSearch(plan=_plan(**kw), timeout=120).search_topk(queries, ref)
        oracle = exhaustive_topk(
            queries, ref, k=3, min_score=80, window=120, overlap=76
        )
        assert (
            hit_keys(warm1)
            == hit_keys(warm2)
            == hit_keys(fresh1)
            == hit_keys(fresh2)
        )
        assert _oracle_keys(warm1) == _oracle_keys(oracle)

    def test_worker_killed_between_calls_is_respawned(self):
        ref, queries, _ = planted_instance(8000, 3, 80, seed=62)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            first = pool.search_topk(queries)
            pool._procs[1].terminate()
            pool._procs[1].join()
            second = pool.search_topk(queries)  # must not wedge
            assert hit_keys(second) == hit_keys(first)
            # Healing is all-or-nothing (the shared result queue is
            # rebuilt, so every worker respawns, not just the dead one).
            assert pool.stats.respawns == pool.num_shards
            assert pool.stats.last_run.warm is False  # respawn = cold again
            third = pool.search_topk(queries)
            assert hit_keys(third) == hit_keys(first)
            assert pool.stats.last_run.warm is True

    def test_per_call_overrides_do_not_stick(self):
        ref, queries, _ = planted_instance(6000, 3, 60, seed=63)
        with ShardWorkerPool(ref, plan=_plan(k=5), timeout=120) as pool:
            narrow = pool.search_topk(queries, k=1)
            assert all(len(hits) <= 1 for hits in narrow)
            assert hit_keys(narrow) == hit_keys(search_topk(queries, ref, k=1))
            wide = pool.search_topk(queries)
            assert hit_keys(wide) == hit_keys(search_topk(queries, ref, k=5))

    def test_chunk_database_pool_uses_pickle_transport(self):
        ref, queries, _ = planted_instance(6000, 2, 80, seed=64)
        chunks = list(chunk_sequence(ref, 160, 96))
        with ShardWorkerPool(iter(chunks), plan=_plan(k=3), timeout=120) as pool:
            got = pool.search_topk(queries)
            again = pool.search_topk(queries)
            assert pool.stats.transport == "pickle"
            assert pool.segment_name is None
        expect = search_topk(queries, chunks, k=3)
        assert hit_keys(got) == hit_keys(again) == hit_keys(expect)

    def test_multi_record_database_round_trips(self):
        records = [
            FastaRecord(name=f"ctg{i}", sequence=random_genome(3000, seed=65 + i))
            for i in range(3)
        ]
        queries = [records[i].sequence[100:180] for i in range(3)]
        with ShardWorkerPool(records, plan=_plan(num_shards=3, k=4), timeout=120) as pool:
            got = pool.search_topk(queries)
            assert hit_keys(got) == hit_keys(search_topk(queries, records, k=4))


class TestRouterWithPool:
    def test_router_serves_searches_from_resident_pool(self):
        import asyncio

        from repro.shard import ShardRouter

        ref, queries, _ = planted_instance(8000, 3, 80, seed=70)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            pool.start()

            async def run():
                router = ShardRouter(2, pool=pool, search_kwargs={"k": 3})
                async with router:
                    hits = [await router.submit_search(q) for q in queries]
                    score = await router.submit(queries[0], ref[:80])
                    text = router.report()
                return hits, score, text

            hits, score, text = asyncio.run(run())
            # Router is a borrower: closing it left the pool running.
            assert not pool.closed
            assert pool.stats.searches == len(queries)
            assert "Resident search pool" in text
        single = search_topk(queries, ref, k=3)
        assert hit_keys([[h for h in hs] for hs in hits]) == hit_keys(single)
        assert isinstance(score, int)


class TestPersistentShardedSearch:
    def test_facade_reuses_pool_and_swaps_on_new_database(self):
        ref1, queries1, _ = planted_instance(8000, 3, 80, seed=66)
        ref2, queries2, _ = planted_instance(7000, 3, 80, seed=67)
        with ShardedSearch(plan=_plan(k=3), timeout=120, persistent=True) as sharded:
            a = sharded.search_topk(queries1, ref1)
            pool = sharded.pool
            b = sharded.search_topk(queries1, ref1)
            assert sharded.pool is pool and pool.stats.swaps == 0
            assert pool.stats.warm_searches == 1
            c = sharded.search_topk(queries2, ref2)
            assert sharded.pool is pool and pool.stats.swaps == 1
            assert sharded.stats.warm  # swap flips the reference, no respawn
        assert pool.closed
        assert hit_keys(a) == hit_keys(b) == hit_keys(search_topk(queries1, ref1, k=3))
        assert hit_keys(c) == hit_keys(search_topk(queries2, ref2, k=3))

    def test_one_shot_facade_still_tears_down(self):
        ref, queries, _ = planted_instance(6000, 2, 80, seed=68)
        sharded = ShardedSearch(plan=_plan(k=3), timeout=120)
        got = sharded.search_topk(queries, ref)
        assert sharded.pool is None  # nothing resident
        assert not _shm_entries()
        assert hit_keys(got) == hit_keys(search_topk(queries, ref, k=3))
        assert sharded.stats.warm is False and sharded.stats.spawn_s > 0
