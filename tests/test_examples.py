"""Every example must run clean end to end (deliverable b)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
SRC = str(Path(__file__).parent.parent / "src")


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    # Examples are subprocesses: they need src/ on PYTHONPATH even when the
    # suite itself got it from pyproject's pythonpath setting.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must produce output"


def test_examples_present():
    # Quickstart plus at least two domain scenarios (deliverable contract).
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
