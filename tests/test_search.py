"""Tests for the streaming query-vs-database search (repro.search)."""

import numpy as np
import pytest

from repro.core.recurrence import score_reference
from repro.core.scoring import linear_gap_scoring, local_scheme, simple_subst_scoring
from repro.engine import ExecutionEngine, PlanCache
from repro.search import (
    QueryIndex,
    SeedPrefilter,
    TopKReducer,
    default_search_scheme,
    exhaustive_topk,
    kmer_codes,
    search,
    search_topk,
)
from repro.util.checks import ValidationError
from repro.util.encoding import encode
from repro.util.rng import make_rng
from repro.workloads import chunk_sequence, random_genome
from repro.workloads.chunks import Chunk


from helpers import planted_instance as _planted_instance


def _hit_keys(per_query):
    return [[(h.start, h.score, h.chunk_id) for h in hits] for hits in per_query]


class TestKmers:
    def test_kmer_codes_brute_force(self):
        seq = encode("ACGTACG")
        got = kmer_codes(seq, 3)
        brute = [int(seq[i]) * 16 + int(seq[i + 1]) * 4 + int(seq[i + 2]) for i in range(5)]
        assert list(got) == brute

    def test_kmer_codes_short_sequence(self):
        assert kmer_codes(encode("AC"), 3).size == 0

    def test_k_bounds(self):
        with pytest.raises(ValidationError):
            kmer_codes(encode("ACGT"), 0)
        with pytest.raises(ValidationError):
            kmer_codes(encode("ACGT"), 32)

    def test_seed_counts_match_set_intersection(self):
        rng = make_rng(3)
        k = 5
        queries = [rng.integers(0, 4, 40).astype(np.uint8) for _ in range(8)]
        index = QueryIndex(queries, k=k)
        subject = rng.integers(0, 4, 120).astype(np.uint8)
        counts = index.seed_counts(subject)
        sset = set(kmer_codes(subject, k).tolist())
        for qid, q in enumerate(queries):
            expect = len(set(kmer_codes(q, k).tolist()) & sset)
            assert counts[qid] == expect

    def test_query_shorter_than_k_rejected(self):
        with pytest.raises(ValidationError, match="shorter"):
            QueryIndex(["ACG"], k=11)


class TestSeedPrefilter:
    def test_expand_admits_seed_sharing_queries(self):
        ref = random_genome(400, seed=9)
        queries = [ref[50:90], random_genome(40, seed=10)]
        index = QueryIndex(queries, k=11)
        pf = SeedPrefilter(index, min_seeds=2)
        chunk = Chunk(id=0, record="ref", start=0, sequence=ref[:200])
        reqs = pf.expand(chunk)
        admitted = {r.meta["query_id"] for r in reqs}
        assert 0 in admitted  # exact substring of the window
        assert pf.candidates == 2
        assert pf.admitted + pf.rejected == 2
        if 1 not in admitted:
            assert pf.rejected_cells == 40 * 200


class TestTopKReducer:
    def _chunk(self, cid, start):
        return Chunk(id=cid, record="r", start=start, sequence=np.zeros(10, np.uint8))

    def test_bounded_and_sorted(self):
        red = TopKReducer(1, k=3)
        for cid, score in enumerate([5, 9, 1, 7, 8]):
            red.offer(0, self._chunk(cid, cid * 10), score)
        (hits,) = red.results()
        assert [h.score for h in hits] == [9, 8, 7]

    def test_ties_prefer_earlier_windows(self):
        red = TopKReducer(1, k=2)
        for cid, start in [(0, 30), (1, 10), (2, 20)]:
            red.offer(0, self._chunk(cid, start), 5)
        (hits,) = red.results()
        assert [h.start for h in hits] == [10, 20]

    def test_ties_prefer_earlier_records_over_starts(self):
        """Regression: the tie order is (score, record, start) — a later
        record's smaller window offset must not outrank an earlier record,
        or sharded merges would depend on shard arrival order."""
        red = TopKReducer(1, k=1)
        late = Chunk(id=9, record="chr2", start=5, sequence=np.zeros(10, np.uint8))
        early = Chunk(id=3, record="chr1", start=400, sequence=np.zeros(10, np.uint8))
        red.offer(0, late, 5)
        red.offer(0, early, 5)
        (hits,) = red.results()
        assert (hits[0].record, hits[0].start) == ("chr1", 400)

    def test_min_score_filters(self):
        red = TopKReducer(1, k=5, min_score=10)
        assert red.offer(0, self._chunk(0, 0), 9) is None
        assert red.offer(0, self._chunk(1, 10), 10) is not None
        (hits,) = red.results()
        assert len(hits) == 1

    def test_non_admitted_returns_none(self):
        red = TopKReducer(1, k=1)
        assert red.offer(0, self._chunk(0, 0), 5) is not None
        assert red.offer(0, self._chunk(1, 10), 3) is None  # worse than kept


class TestOracleIdentity:
    """The streaming pipeline retains exactly the exhaustive full-DP hits."""

    def test_identical_hit_sets_small_instance(self):
        ref, queries, _ = _planted_instance(8000, 16, 80, seed=42)
        window = 160
        # band=window makes banded == full DP structurally (no cell of an
        # n ≤ m problem is excluded), so identity must be exact.
        run = search(
            queries, ref, k=4, min_score=100, min_seeds=1, window=window, band=window
        )
        got = run.topk()
        oracle = exhaustive_topk(queries, ref, k=4, min_score=100, window=window)
        assert _hit_keys(got) == _hit_keys(oracle)
        # And the prefilter actually did reject most candidates.
        assert run.stats.rejection_rate > 0.9

    def test_full_verify_mode_matches_oracle(self):
        ref, queries, _ = _planted_instance(5000, 8, 60, seed=77)
        got = search_topk(
            queries, ref, k=3, min_score=80, min_seeds=1, window=120, verify="full"
        )
        oracle = exhaustive_topk(queries, ref, k=3, min_score=80, window=120)
        assert _hit_keys(got) == _hit_keys(oracle)

    def test_banded_default_recovers_all_plants(self):
        # The default (narrower) band still finds every true placement —
        # only sub-band shoulder placements may differ from the oracle.
        ref, queries, positions = _planted_instance(12_000, 12, 100, seed=5)
        topk = search_topk(queries, ref, k=2, min_score=150)
        for qid, p in enumerate(positions):
            assert topk[qid], f"query {qid} found nothing"
            best = topk[qid][0]
            assert best.start <= p < best.end


class TestStreamingScale:
    def test_128_queries_vs_1mbp_reference_streams(self):
        """Acceptance: 128 queries against a ≥1 Mbp synthetic reference.

        Results must stream (first hit before the scan finishes), every
        planted query must be recovered, and the seed prefilter must
        reject the overwhelming majority of candidate pairs.
        """
        ref, queries, positions = _planted_instance(
            1_000_000, 128, 150, seed=7, divergence=0.03
        )
        consumed = {"n": 0}

        def counting_chunks():
            for c in chunk_sequence(ref, 300, 166):
                consumed["n"] += 1
                yield c

        run = search(
            queries, counting_chunks(), k=3, min_score=200, window=300, overlap=166
        )
        first_at = None
        events = 0
        for _hit in run:
            if first_at is None:
                first_at = consumed["n"]
            events += 1
        topk = run.topk()
        total = consumed["n"]
        assert total > 3000  # ≥1 Mbp really was windowed
        assert events >= 128
        assert first_at < total, "no hit streamed before the scan finished"
        for qid, p in enumerate(positions):
            assert topk[qid], f"query {qid} found nothing"
            best = topk[qid][0]
            assert best.start <= p < best.end, (qid, p, best)
        st = run.stats
        assert st.rejection_rate > 0.95
        assert st.cells_skipped_prefilter > 0
        assert st.cells_skipped_band > 0
        assert st.cells_computed < st.cells_skipped


class TestBackpressure:
    def test_bounded_in_flight_budget(self):
        ref, queries, _ = _planted_instance(6000, 8, 60, seed=11)
        run = search(
            queries, ref, k=3, min_score=80, min_seeds=1, window=120, max_in_flight=4
        )
        baseline = search_topk(queries, ref, k=3, min_score=80, min_seeds=1, window=120)
        assert _hit_keys(run.topk()) == _hit_keys(baseline)
        assert run.stats.max_buffered <= 4 + 1

    def test_report_renders(self):
        ref, queries, _ = _planted_instance(4000, 4, 50, seed=13)
        run = search(queries, ref, k=2)
        run.topk()
        text = run.report()
        assert "rejection rate" in text and "cells skipped (band)" in text


class TestPrewindowedDatabases:
    def test_wide_chunk_iterator_gets_covering_band(self):
        # A pre-windowed database with chunks wider than 2*qlen: the
        # per-batch auto band must still cover the placement offset
        # (regression: a band derived from an assumed window lost hits).
        rng = make_rng(29)
        ref = random_genome(4000, seed=rng)
        query = ref[2300:2400].copy()  # offset 300 inside chunk [2000, 2500)
        chunks = chunk_sequence(ref, window=500, overlap=120)
        (hits,) = search([query], chunks, k=1, min_seeds=1).topk()
        assert hits and hits[0].score == 2 * 100  # exact placement found

    def test_chunk_list_and_iterator_agree(self):
        ref, queries, _ = _planted_instance(5000, 6, 70, seed=37)
        chunks = list(chunk_sequence(ref, window=200, overlap=90))
        a = search_topk(queries, iter(chunks), k=2, min_score=90)
        b = search_topk(queries, chunks, k=2, min_score=90)
        assert _hit_keys(a) == _hit_keys(b)


class TestEngineOwnership:
    def test_private_engine_closed_on_drain(self):
        ref, queries, _ = _planted_instance(3000, 4, 50, seed=41)
        run = search(queries, ref, k=1)
        run.topk()
        assert run.pipeline.executor.closed

    def test_private_engine_closed_via_context_manager(self):
        ref, queries, _ = _planted_instance(3000, 4, 50, seed=43)
        with search(queries, ref, k=1) as run:
            next(iter(run), None)
        assert run.pipeline.executor.closed

    def test_caller_engine_left_open(self):
        ref, queries, _ = _planted_instance(3000, 4, 50, seed=47)
        with ExecutionEngine(default_search_scheme(), backend="rowscan", plan_cache=PlanCache()) as eng:
            search(queries, ref, k=1, engine=eng).topk()
            assert not eng.closed  # caller-owned engines are not touched


class TestSearchConfiguration:
    def test_shared_engine_and_plan_cache(self):
        ref, queries, _ = _planted_instance(4000, 4, 50, seed=17)
        scheme = default_search_scheme()
        cache = PlanCache()
        with ExecutionEngine(scheme, backend="rowscan", plan_cache=cache) as eng:
            a = search_topk(queries, ref, k=2, engine=eng)
            b = search_topk(queries, ref, k=2, engine=eng)
        assert _hit_keys(a) == _hit_keys(b)
        assert len(cache) == 1  # both runs shared one plan

    def test_engine_scheme_mismatch_rejected(self):
        eng = ExecutionEngine(plan_cache=PlanCache())  # global default scheme
        with pytest.raises(ValidationError, match="scheme"):
            search(["ACGTACGTACGTACG"], random_genome(500, seed=1), engine=eng)

    def test_local_scheme_rejected(self):
        scheme = local_scheme(linear_gap_scoring(simple_subst_scoring(2, -1), -1))
        with pytest.raises(ValidationError, match="global"):
            search(["ACGTACGTACGTACG"], random_genome(500, seed=1), scheme=scheme)

    def test_window_smaller_than_query_rejected(self):
        with pytest.raises(ValidationError, match="window"):
            search(["A" * 50], random_genome(500, seed=1), window=30)

    def test_bad_verify_mode_rejected(self):
        with pytest.raises(ValidationError, match="verify"):
            search(["A" * 20], random_genome(500, seed=1), verify="psychic")

    def test_scores_match_reference_dp(self):
        # Every reported hit score is the exact semiglobal score of the
        # (query, window) pair it names.
        ref, queries, _ = _planted_instance(3000, 4, 50, seed=23)
        scheme = default_search_scheme()
        window = 120
        topk = search_topk(
            queries, ref, k=2, min_seeds=1, window=window, band=window, min_score=60
        )
        for qid, hits in enumerate(topk):
            for h in hits:
                sub = ref[h.start : h.end]
                assert h.score == score_reference(encode(queries[qid]), sub, scheme)
