"""Tests for workload generation (repro.workloads)."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import align_score
from repro.core.scoring import (
    global_scheme,
    linear_gap_scoring,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.util.checks import ValidationError
from repro.util.encoding import decode
from repro.util.rng import make_rng
from repro.workloads import (
    FastaRecord,
    IlluminaProfile,
    MutationModel,
    TABLE1_PAIRS,
    TABLE1_SEQUENCES,
    chunk_records,
    chunk_sequence,
    iter_fasta,
    mutate,
    random_genome,
    read_fasta,
    read_fastq,
    read_pairs,
    related_pair,
    simulate_reads,
    table1_descriptions,
    table1_pair,
    write_fasta,
    write_fastq,
)


class TestRandomGenome:
    def test_length_and_codes(self):
        g = random_genome(5000, seed=1)
        assert g.size == 5000 and g.dtype == np.uint8 and g.max() <= 3

    def test_gc_content_controlled(self):
        g = random_genome(200_000, gc_content=0.6, seed=2)
        gc = np.isin(g, (1, 2)).mean()
        assert abs(gc - 0.6) < 0.01

    def test_deterministic(self):
        np.testing.assert_array_equal(random_genome(100, seed=7), random_genome(100, seed=7))

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_genome(0)
        with pytest.raises(ValidationError):
            random_genome(10, gc_content=1.5)


class TestMutate:
    def test_no_mutation_identity(self):
        g = random_genome(1000, seed=3)
        out = mutate(g, MutationModel(0, 0, 0), seed=4)
        np.testing.assert_array_equal(out, g)

    def test_substitution_rate(self):
        g = random_genome(100_000, seed=5)
        out = mutate(g, MutationModel(0.1, 0, 0), seed=6)
        assert out.size == g.size
        frac = (out != g).mean()
        assert 0.08 < frac < 0.12

    def test_substitutions_change_base(self):
        g = random_genome(10_000, seed=8)
        out = mutate(g, MutationModel(1.0, 0, 0), seed=9)
        assert (out != g).all()

    def test_indels_change_length(self):
        g = random_genome(10_000, seed=10)
        out = mutate(g, MutationModel(0, 0.01, 0), seed=11)
        assert out.size > g.size
        out2 = mutate(g, MutationModel(0, 0, 0.01), seed=12)
        assert out2.size < g.size

    def test_rate_validation(self):
        with pytest.raises(ValidationError):
            MutationModel(substitution=1.5)
        with pytest.raises(ValidationError):
            MutationModel(indel_mean=0.5)

    @settings(max_examples=10, deadline=None)
    @given(sub=st.floats(0, 0.3), seed=st.integers(0, 10_000))
    def test_output_is_valid_dna(self, sub, seed):
        g = random_genome(500, seed=seed)
        out = mutate(g, MutationModel(sub, 0.01, 0.01), seed=seed + 1)
        assert out.dtype == np.uint8 and (out <= 3).all()


class TestRelatedPair:
    def test_divergence_reflected_in_alignment(self):
        scheme = global_scheme(linear_gap_scoring(simple_subst_scoring(2, -1), -1))
        close = related_pair(800, divergence=0.02, seed=13)
        far = related_pair(800, divergence=0.4, seed=13)
        assert align_score(close.query, close.subject, scheme) > align_score(
            far.query, far.subject, scheme
        )

    def test_zero_divergence_identical(self):
        pair = related_pair(500, divergence=0.0, seed=14)
        np.testing.assert_array_equal(pair.query, pair.subject)

    def test_cells(self):
        pair = related_pair(300, divergence=0.1, seed=15)
        assert pair.cells == pair.query.size * pair.subject.size


class TestReads:
    def test_shapes(self):
        rs = read_pairs(20, read_length=100, reference_length=10_000, seed=16)
        assert rs.reads.shape == (20, 100)
        assert rs.windows.shape == (20, 100 + 2 * rs.padding)
        assert len(rs) == 20

    def test_reads_align_to_windows(self):
        # Semi-global alignment of read vs window must recover ~perfect
        # scores (reads carry only sequencing errors).
        scheme = semiglobal_scheme(linear_gap_scoring(simple_subst_scoring(2, -1), -1))
        rs = read_pairs(10, read_length=80, reference_length=20_000, seed=17)
        for k in range(10):
            score = align_score(rs.reads[k], rs.windows[k], scheme)
            assert score >= 2 * 80 * 0.9  # few errors only

    def test_error_free_profile_exact(self):
        profile = IlluminaProfile(0, 0, 0, 0)
        ref = random_genome(5000, seed=18)
        rs = simulate_reads(ref, 5, read_length=50, profile=profile, seed=19)
        for k in range(5):
            pos = int(rs.positions[k])
            np.testing.assert_array_equal(rs.reads[k], ref[pos : pos + 50])

    def test_error_rate_ramp(self):
        profile = IlluminaProfile(sub_start=0.0, sub_end=0.3)
        ref = random_genome(50_000, seed=20)
        rs = simulate_reads(ref, 400, read_length=100, profile=profile, seed=21)
        diffs = np.zeros(100)
        for k in range(len(rs)):
            pos = int(rs.positions[k])
            diffs += rs.reads[k] != ref[pos : pos + 100]
        # 3' end must accumulate clearly more errors than the 5' end.
        assert diffs[80:].sum() > 3 * diffs[:20].sum()

    def test_reference_too_short(self):
        with pytest.raises(ValidationError):
            simulate_reads(random_genome(50, seed=1), 1, read_length=100)

    def test_deterministic(self):
        a = read_pairs(5, read_length=60, reference_length=5000, seed=22)
        b = read_pairs(5, read_length=60, reference_length=5000, seed=22)
        np.testing.assert_array_equal(a.reads, b.reads)


class TestFasta:
    def test_roundtrip(self):
        recs = [
            FastaRecord("seq1", random_genome(100, seed=23), "first"),
            FastaRecord("seq2", random_genome(35, seed=24)),
        ]
        text = write_fasta(recs)
        back = read_fasta(text)
        assert [r.name for r in back] == ["seq1", "seq2"]
        assert back[0].description == "first"
        np.testing.assert_array_equal(back[0].sequence, recs[0].sequence)

    def test_multiline_wrapping(self):
        rec = FastaRecord("x", random_genome(200, seed=25))
        text = write_fasta([rec], width=50)
        assert max(len(ln) for ln in text.splitlines()) <= 50
        np.testing.assert_array_equal(read_fasta(text)[0].sequence, rec.sequence)

    def test_file_object(self):
        rec = FastaRecord("x", random_genome(10, seed=26))
        back = read_fasta(io.StringIO(write_fasta([rec])))
        assert back[0].name == "x"

    def test_path_roundtrip(self, tmp_path):
        rec = FastaRecord("x", random_genome(40, seed=27))
        p = tmp_path / "test.fa"
        write_fasta([rec], path=p)
        np.testing.assert_array_equal(read_fasta(str(p))[0].sequence, rec.sequence)

    def test_invalid_char(self):
        with pytest.raises(ValidationError):
            read_fasta(">x\nACGN\n")

    def test_skip_invalid_masks(self):
        rec = read_fasta(">x\nACGN\n", skip_invalid=True)[0]
        assert rec.text() == "ACGA"

    def test_no_records(self):
        with pytest.raises(ValidationError):
            read_fasta("just text\n")

    def test_fastq_roundtrip(self):
        recs = [FastaRecord("r1", random_genome(30, seed=28), quality="I" * 30)]
        text = write_fastq(recs)
        back = read_fastq(text)
        assert back[0].quality == "I" * 30
        np.testing.assert_array_equal(back[0].sequence, recs[0].sequence)

    def test_fastq_malformed(self):
        with pytest.raises(ValidationError):
            read_fastq("@x\nACGT\n+\nII\n")  # quality too short
        with pytest.raises(ValidationError):
            read_fastq("@x\nACGT\n+\n")


class TestFastaRoundTrip:
    def test_wrapped_lines_exact_multiple(self):
        # Sequence length an exact multiple of the wrap width: no short
        # trailing line, still byte-identical after a round trip.
        rec = FastaRecord("x", random_genome(140, seed=31))
        for width in (7, 70, 140):
            text = write_fasta([rec], width=width)
            back = read_fasta(text)[0]
            np.testing.assert_array_equal(back.sequence, rec.sequence)

    def test_empty_record_roundtrip(self):
        recs = [
            FastaRecord("empty", np.empty(0, dtype=np.uint8), "no sequence"),
            FastaRecord("full", random_genome(25, seed=32)),
        ]
        back = read_fasta(write_fasta(recs))
        assert [r.name for r in back] == ["empty", "full"]
        assert len(back[0]) == 0 and back[0].description == "no sequence"
        np.testing.assert_array_equal(back[1].sequence, recs[1].sequence)

    def test_empty_record_between_records(self):
        back = read_fasta(">a\n>b\nACGT\n>c\n")
        assert [len(r) for r in back] == [0, 4, 0]

    def test_many_records_odd_width(self):
        recs = [FastaRecord(f"r{k}", random_genome(10 + 7 * k, seed=k)) for k in range(6)]
        back = read_fasta(write_fasta(recs, width=13))
        assert len(back) == 6
        for orig, rec in zip(recs, back):
            np.testing.assert_array_equal(rec.sequence, orig.sequence)


class TestMutateDeterminism:
    MODEL = MutationModel(substitution=0.05, insertion=0.01, deletion=0.01)

    def test_same_int_seed_same_output(self):
        g = random_genome(5000, seed=40)
        np.testing.assert_array_equal(
            mutate(g, self.MODEL, seed=41), mutate(g, self.MODEL, seed=41)
        )

    def test_make_rng_seed_equivalent(self):
        # Passing an int and passing make_rng(int) must agree: mutate
        # routes everything through util.rng.make_rng.
        g = random_genome(2000, seed=42)
        np.testing.assert_array_equal(
            mutate(g, self.MODEL, seed=43), mutate(g, self.MODEL, seed=make_rng(43))
        )

    def test_default_seed_is_fixed(self):
        g = random_genome(1000, seed=44)
        np.testing.assert_array_equal(
            mutate(g, self.MODEL, seed=None), mutate(g, self.MODEL, seed=None)
        )

    def test_distinct_seeds_differ(self):
        g = random_genome(5000, seed=45)
        assert not np.array_equal(
            mutate(g, self.MODEL, seed=1), mutate(g, self.MODEL, seed=2)
        )


class TestChunks:
    def test_covers_every_base(self):
        seq = random_genome(1000, seed=50)
        chunks = list(chunk_sequence(seq, window=128, overlap=32))
        covered = np.zeros(seq.size, dtype=bool)
        for c in chunks:
            covered[c.start : c.end] = True
            np.testing.assert_array_equal(c.sequence, seq[c.start : c.end])
        assert covered.all()

    def test_consecutive_chunks_overlap(self):
        seq = random_genome(700, seed=51)
        chunks = list(chunk_sequence(seq, window=100, overlap=40))
        for a, b in zip(chunks, chunks[1:]):
            assert b.start == a.start + 60  # stride = window − overlap
            assert a.end - b.start == 40 or a.end == seq.size

    def test_stitching_guarantee(self):
        # Any interval of length ≤ overlap+1 lies inside some chunk.
        seq = random_genome(500, seed=52)
        window, overlap = 64, 24
        chunks = list(chunk_sequence(seq, window, overlap))
        for start in range(0, seq.size - (overlap + 1)):
            end = start + overlap + 1
            assert any(c.start <= start and end <= c.end for c in chunks), start

    def test_short_sequence_single_chunk(self):
        seq = random_genome(30, seed=53)
        (only,) = chunk_sequence(seq, window=100, overlap=10)
        assert only.start == 0 and only.end == 30 and len(only) == 30

    def test_tail_chunk_reaches_end(self):
        seq = random_genome(205, seed=54)
        chunks = list(chunk_sequence(seq, window=100, overlap=0))
        assert [c.start for c in chunks] == [0, 100, 200]
        assert chunks[-1].end == 205 and len(chunks[-1]) == 5

    def test_ids_and_names_across_records(self):
        recs = [
            FastaRecord("chr1", random_genome(150, seed=55)),
            FastaRecord("empty", np.empty(0, dtype=np.uint8)),
            FastaRecord("chr2", random_genome(90, seed=56)),
        ]
        chunks = list(chunk_records(recs, window=64, overlap=16))
        assert [c.id for c in chunks] == list(range(len(chunks)))
        names = {c.record for c in chunks}
        assert names == {"chr1", "chr2"}  # empty record skipped
        # Offsets restart per record.
        chr2 = [c for c in chunks if c.record == "chr2"]
        assert chr2[0].start == 0

    def test_chunks_are_views(self):
        seq = random_genome(256, seed=57)
        for c in chunk_sequence(seq, window=64, overlap=8):
            assert c.sequence.base is seq

    def test_validation(self):
        seq = random_genome(10, seed=58)
        with pytest.raises(ValidationError):
            list(chunk_sequence(seq, window=0))
        with pytest.raises(ValidationError):
            list(chunk_sequence(seq, window=8, overlap=8))
        with pytest.raises(ValidationError):
            list(chunk_sequence(seq, window=8, overlap=-1))

    def test_string_input(self):
        chunks = list(chunk_sequence("ACGTACGTACGT", window=8, overlap=4))
        # Stride 4; the chunk at offset 4 already reaches the end.
        assert [(c.start, c.end) for c in chunks] == [(0, 8), (4, 12)]


class TestTable1:
    def test_registry_matches_paper(self):
        assert len(TABLE1_SEQUENCES) == 6
        assert TABLE1_SEQUENCES[0].accession == "NC_000962.3"
        assert TABLE1_SEQUENCES[5].length == 50_073_674
        assert len(TABLE1_PAIRS) == 3

    def test_scaled_pair_lengths(self):
        pair = table1_pair("bacteria", scale=1000, seed=29)
        assert pair.query.size == 4_411_532 // 1000
        assert pair.subject.size == 4_641_652 // 1000
        assert pair.meta["accessions"] == ("NC_000962.3", "NC_000913.3")

    def test_unknown_pair(self):
        with pytest.raises(ValidationError):
            table1_pair("nope")

    def test_descriptions(self):
        desc = table1_descriptions()
        assert len(desc) == 6 and "tuberculosis" in desc[0]

    def test_pairs_alignable(self):
        scheme = global_scheme(linear_gap_scoring(simple_subst_scoring(2, -1), -1))
        pair = table1_pair("bacteria", scale=10_000, seed=30)
        score = align_score(pair.query, pair.subject, scheme)
        # Related genomes score clearly above random expectation.
        assert score > 0


class TestIterFasta:
    def _records(self, count=5, length=300, seed=60):
        return [
            FastaRecord(f"rec{i}", random_genome(length, seed=seed + i))
            for i in range(count)
        ]

    def test_matches_read_fasta(self):
        recs = self._records()
        text = write_fasta(recs)
        streamed = list(iter_fasta(text))
        slurped = read_fasta(text)
        assert [r.name for r in streamed] == [r.name for r in slurped]
        for a, b in zip(streamed, slurped):
            np.testing.assert_array_equal(a.sequence, b.sequence)

    def test_path_streams_lazily(self, tmp_path):
        recs = self._records(count=4)
        p = tmp_path / "multi.fa"
        write_fasta(recs, p)
        it = iter_fasta(str(p))
        first = next(it)
        assert first.name == "rec0"
        np.testing.assert_array_equal(first.sequence, recs[0].sequence)
        assert [r.name for r in it] == ["rec1", "rec2", "rec3"]

    def test_one_record_in_memory_at_a_time(self):
        # A record is yielded before any line of the *next* record is read.
        recs = self._records(count=3, length=80)
        lines = write_fasta(recs).splitlines()
        consumed = []

        def counting_lines():
            for ln in lines:
                consumed.append(ln)
                yield ln

        class FileLike:
            def __init__(self, gen):
                self._gen = gen

            def read(self):  # pragma: no cover - iter_fasta must not slurp
                raise AssertionError("iter_fasta slurped the file")

            def __iter__(self):
                return self._gen

        it = iter_fasta(FileLike(counting_lines()))
        next(it)
        # rec0 is complete once rec1's header is seen; rec2's lines unread.
        assert any(ln.startswith(">rec1") for ln in consumed)
        assert not any(ln.startswith(">rec2") for ln in consumed)

    def test_read_only_stream_object_accepted(self):
        # Pre-streaming behavior: any object with .read() parsed, even
        # without __iter__ (e.g. a decoding adapter stream).
        recs = self._records(count=2, length=60)
        text = write_fasta(recs)

        class ReadOnly:
            def read(self):
                return text

        back = list(iter_fasta(ReadOnly()))
        assert [r.name for r in back] == [r.name for r in recs]
        for a, b in zip(back, recs):
            np.testing.assert_array_equal(a.sequence, b.sequence)

    def test_empty_input_yields_nothing_but_read_raises(self):
        assert list(iter_fasta("\n")) == []
        with pytest.raises(ValidationError):
            read_fasta("\n")

    def test_data_before_header_raises(self):
        with pytest.raises(ValidationError):
            list(iter_fasta("ACGT\n>x\nACGT\n"))

    def test_chunk_records_accepts_iterator_end_to_end(self, tmp_path):
        # A streamed multi-record reference scans end to end: the chunk
        # iterator pulls records one at a time from the parser.
        recs = self._records(count=3, length=500, seed=70)
        p = tmp_path / "ref.fa"
        write_fasta(recs, p)
        streamed = list(chunk_records(iter_fasta(p), window=128, overlap=32))
        materialized = list(chunk_records(read_fasta(p), window=128, overlap=32))
        assert [(c.id, c.record, c.start) for c in streamed] == [
            (c.id, c.record, c.start) for c in materialized
        ]
        for a, b in zip(streamed, materialized):
            np.testing.assert_array_equal(a.sequence, b.sequence)
