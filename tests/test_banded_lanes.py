"""Tests for the lane-batched banded verify kernel and seed-anchored bands.

Covers the compiled lane sweep (``banded_score_lanes`` through the
``stage/`` codegen path) against the scalar sweep and the masked-DP
oracle, the band/edge geometry, the seed-diagonal envelope from the
prefilter, band-keyed bucketing, and the backend routing of verify
buckets.
"""

import numpy as np
import pytest
from test_banded import (
    AFF,
    HARSH_AFF,
    LIN,
    SEMI_AFF,
    SEMI_LIN,
    _masked_reference_banded,
)

from repro.core.banded import band_cells, banded_score, banded_score_lanes, effective_band
from repro.core.scoring import affine_gap_scoring, semiglobal_scheme, simple_subst_scoring
from repro.engine import ExecutionEngine, PlanCache
from repro.engine.batching import ShapeBatcher
from repro.engine.stages import Request
from repro.search.pipeline import BandedVerifyStage, search
from repro.search.seeds import QueryIndex
from repro.util.checks import ValidationError
from repro.util.encoding import encode
from repro.util.rng import make_rng
from repro.workloads import MutationModel, mutate, random_genome

ALL_SCHEMES = pytest.mark.parametrize(
    "scheme",
    [LIN, AFF, SEMI_LIN, SEMI_AFF, HARSH_AFF],
    ids=["linear", "affine", "semi-linear", "semi-affine", "harsh-affine"],
)


def _random_stack(rng, scheme, lanes, size=30):
    from repro.core.types import AlignmentType

    semi = scheme.alignment_type is AlignmentType.SEMIGLOBAL
    n, m = (int(x) for x in rng.integers(1, size, 2))
    extra = int(rng.integers(0, 10))
    band = extra if semi else abs(n - m) + extra
    qs = rng.integers(0, 4, (lanes, n)).astype(np.uint8)
    ss = rng.integers(0, 4, (lanes, m)).astype(np.uint8)
    return qs, ss, band


class TestLaneKernelBitIdentity:
    @ALL_SCHEMES
    def test_matches_scalar_sweep(self, scheme):
        rng = np.random.default_rng(7)
        for _ in range(12):
            lanes = int(rng.integers(1, 7))
            qs, ss, band = _random_stack(rng, scheme, lanes)
            got = banded_score_lanes(qs, ss, scheme, band)
            want = [banded_score(q, s, scheme, band) for q, s in zip(qs, ss)]
            assert got.tolist() == want

    @ALL_SCHEMES
    def test_matches_masked_oracle(self, scheme):
        rng = np.random.default_rng(11)
        for _ in range(6):
            qs, ss, band = _random_stack(rng, scheme, 3, size=20)
            got = banded_score_lanes(qs, ss, scheme, band)
            want = [
                _masked_reference_banded(q, s, scheme, band) for q, s in zip(qs, ss)
            ]
            assert got.tolist() == want

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
    def test_dtypes_agree(self, dtype):
        rng = np.random.default_rng(13)
        qs = rng.integers(0, 4, (4, 24)).astype(np.uint8)
        ss = rng.integers(0, 4, (4, 30)).astype(np.uint8)
        got = banded_score_lanes(qs, ss, SEMI_AFF, 9, dtype=dtype)
        want = [banded_score(q, s, SEMI_AFF, 9) for q, s in zip(qs, ss)]
        assert got.dtype == np.int64 and got.tolist() == want

    def test_widen_matches_scalar(self):
        rng = np.random.default_rng(17)
        qs = rng.integers(0, 4, (3, 20)).astype(np.uint8)
        ss = rng.integers(0, 4, (3, 8)).astype(np.uint8)
        got = banded_score_lanes(qs, ss, LIN, 2, widen=True)
        want = [banded_score(q, s, LIN, 2, widen=True) for q, s in zip(qs, ss)]
        assert got.tolist() == want
        with pytest.raises(ValidationError, match="widen"):
            banded_score_lanes(qs, ss, LIN, 2)

    def test_requires_uniform_stack(self):
        qs = np.zeros((2, 10), dtype=np.uint8)
        ss = np.zeros((3, 12), dtype=np.uint8)
        with pytest.raises(ValidationError, match="lanes"):
            banded_score_lanes(qs, ss, SEMI_LIN, 4)


class TestEdgeGeometry:
    def test_band_zero_after_widening(self):
        # Equal lengths: widen keeps band 0 — the pure diagonal.
        q, s = encode("ACGTACGT"), encode("ACCTACGT")
        assert banded_score(q, s, LIN, 0, widen=True) == banded_score(q, s, LIN, 0)
        got = banded_score_lanes(q[None, :], s[None, :], LIN, 0, widen=True)
        assert got[0] == banded_score(q, s, LIN, 0)
        assert band_cells(8, 8, 0) == 8

    @ALL_SCHEMES
    def test_band_at_least_m_is_full_dp(self, scheme):
        rng = np.random.default_rng(23)
        n, m = 11, 7
        band = max(n, m)
        qs = rng.integers(0, 4, (2, n)).astype(np.uint8)
        ss = rng.integers(0, 4, (2, m)).astype(np.uint8)
        wider = banded_score_lanes(qs, ss, scheme, band + 5)
        assert banded_score_lanes(qs, ss, scheme, band).tolist() == wider.tolist()
        assert band_cells(n, m, band) == n * m

    @pytest.mark.parametrize("scheme", [SEMI_LIN, SEMI_AFF], ids=["linear", "affine"])
    def test_single_row_and_single_column(self, scheme):
        rng = np.random.default_rng(29)
        for n, m in [(1, 17), (17, 1), (1, 1)]:
            for band in (0, 2, 20):
                qs = rng.integers(0, 4, (2, n)).astype(np.uint8)
                ss = rng.integers(0, 4, (2, m)).astype(np.uint8)
                got = banded_score_lanes(qs, ss, scheme, band)
                want = [
                    _masked_reference_banded(q, s, scheme, band)
                    for q, s in zip(qs, ss)
                ]
                assert got.tolist() == want

    def test_effective_band_semiglobal_vs_global(self):
        # Global must reach the corner: widen lifts the band to |n - m|;
        # semiglobal keeps any requested band.
        assert effective_band(20, 8, 3, LIN, widen=True) == 12
        assert effective_band(20, 8, 3, SEMI_LIN, widen=True) == 3
        assert effective_band(20, 8, 14, LIN, widen=True) == 14
        with pytest.raises(ValidationError, match="corner"):
            effective_band(20, 8, 3, LIN)


class TestSeedEnvelope:
    def test_seed_scan_matches_counts_and_envelope(self):
        rng = make_rng(41)
        ref = random_genome(4000, seed=rng)
        queries = [ref[100:180].copy(), ref[2000:2080].copy()]
        index = QueryIndex(queries, k=11)
        window = ref[80:400]
        counts, diag_lo, diag_hi = index.seed_scan(window)
        assert counts.tolist() == index.seed_counts(window).tolist()
        # Query 0 sits at offset 20 in the window: every seed diagonal is 20.
        assert counts[0] > 0 and diag_lo[0] == diag_hi[0] == 20
        # Query 1 shares no seeds: sentinel envelope stays inverted.
        assert counts[1] == 0 and diag_lo[1] > diag_hi[1]

    def test_band_of_anchors_and_quantizes(self):
        eng = ExecutionEngine(plan_cache=PlanCache(), backend="rowscan")
        stage = BandedVerifyStage(eng.plan_for("rowscan"), band_pad=16)
        q = np.zeros(100, dtype=np.uint8)
        s = np.zeros(300, dtype=np.uint8)

        def req(meta):
            return Request(key=0, query=q, subject=s, meta=meta)

        extent = abs(300 - 100) + 16
        # Anchored: max(|diag|) + pad, rounded up to the 32-cell quantum.
        assert stage.band_of(req({"diag_lo": 40, "diag_hi": 44})) == 64
        # Wide envelopes cap at the window extent.
        assert stage.band_of(req({"diag_lo": -10, "diag_hi": 290})) == extent
        # No envelope (or inverted sentinel) falls back to the extent.
        assert stage.band_of(req({})) == extent
        big = 2**62
        assert stage.band_of(req({"diag_lo": big, "diag_hi": -big})) == extent
        # An explicit band overrides anchoring entirely.
        fixed = BandedVerifyStage(eng.plan_for("rowscan"), band=40)
        assert fixed.band_of(req({"diag_lo": 0, "diag_hi": 0})) == 40


class TestBandKeyedBatching:
    def test_key_of_splits_same_shape(self):
        batcher = ShapeBatcher(max_lanes=8, key_of=lambda r: r.meta["band"])
        q = np.zeros(10, dtype=np.uint8)
        s = np.zeros(20, dtype=np.uint8)
        reqs = [
            Request(key=i, query=q, subject=s, meta={"band": 32 * (1 + i % 2)})
            for i in range(6)
        ]
        batches = []
        for r in reqs:
            batches.extend(batcher.add(r))
        batches.extend(batcher.flush())
        assert len(batches) == 2
        for batch in batches:
            bands = {r.meta["band"] for r in batch.requests}
            assert len(bands) == 1 and batch.shape == (10, 20)


class TestSimulatedBackendBanded:
    @pytest.mark.parametrize("backend", ["gpu", "fpga"])
    def test_capability_and_score(self, backend):
        from repro.core import Aligner
        from repro.core.backend import capability_matrix

        assert capability_matrix()[backend].banded
        a = Aligner(SEMI_AFF, backend=backend)
        rng = np.random.default_rng(43)
        q = rng.integers(0, 4, 30).astype(np.uint8)
        s = rng.integers(0, 4, 50).astype(np.uint8)
        assert a.banded_score(q, s, 12) == banded_score(q, s, SEMI_AFF, 12)

    @pytest.mark.parametrize("backend", ["gpu", "fpga"])
    def test_plan_score_banded_block(self, backend):
        eng = ExecutionEngine(SEMI_LIN, plan_cache=PlanCache(), backend=backend)
        plan = eng.plan_for(backend)
        rng = np.random.default_rng(47)
        qs = rng.integers(0, 4, (3, 20)).astype(np.uint8)
        ss = rng.integers(0, 4, (3, 35)).astype(np.uint8)
        got = plan.score_banded_block(qs, ss, 10)
        want = [banded_score(q, s, SEMI_LIN, 10) for q, s in zip(qs, ss)]
        assert got.tolist() == want


class TestSearchRouting:
    def _workload(self):
        rng = make_rng(53)
        ref = random_genome(30_000, seed=rng)
        positions = rng.integers(0, ref.size - 100, 24)
        model = MutationModel(substitution=0.03, insertion=0.0, deletion=0.0)
        queries = [mutate(ref[p : p + 100], model, seed=rng) for p in positions]
        return ref, queries

    def _flat(self, run):
        return [[(h.record, h.start, h.score) for h in hs] for hs in run.topk()]

    def test_lane_and_scalar_paths_agree(self):
        ref, queries = self._workload()
        lane = search(queries, ref, k=3, min_score=160)
        scalar = search(queries, ref, k=3, min_score=160, lane_verify=False)
        legacy = search(
            queries, ref, k=3, min_score=160, anchor=False, lane_verify=False
        )
        assert self._flat(lane) == self._flat(scalar) == self._flat(legacy)
        stats = lane.pipeline.stage.path_stats()
        assert stats["lanes"]["pairs"] > 0
        assert scalar.pipeline.stage.path_stats()["lanes"]["pairs"] == 0
        # Anchoring never computes more cells than the window extent.
        assert (
            lane.stats.cells_computed + scalar.stats.cells_computed
        ) <= 2 * legacy.stats.cells_computed

    def test_route_splits_buckets_across_backends(self):
        from repro.serve import ServiceConfig

        ref, queries = self._workload()
        config = ServiceConfig(route_backends=True)
        plain = search(queries, ref, k=3, min_score=160)
        routed = search(queries, ref, k=3, min_score=160, route=config)
        assert self._flat(routed) == self._flat(plain)
        stage = routed.pipeline.stage
        assert set(stage.plans) == {"simd", "rowscan"}
        assert stage.path_stats()["lanes"]["pairs"] > 0
