"""Tests for wavefront scheduling (repro.sched)."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    CostModel,
    DynamicWavefrontScheduler,
    StaticWavefrontSchedule,
    TileGraph,
    TileGrid,
    simulate_dynamic,
    simulate_static,
)
from repro.util.checks import SchedulingError, ValidationError


def _graph(n=100, m=120, th=16, tw=16, alignments=1):
    grids = []
    base = 0
    for k in range(alignments):
        g = TileGrid.build(k, n + 7 * k, m + 3 * k, th, tw, id_base=base)
        base += len(g)
        grids.append(g)
    return TileGraph(grids)


class TestTileGrid:
    def test_tile_count_and_shapes(self):
        g = TileGrid.build(0, 100, 120, 16, 16)
        assert g.nti == 7 and g.ntj == 8
        assert len(g) == 56
        assert g.tile_at(0, 0).shape == (16, 16)
        assert g.tile_at(6, 7).shape == (4, 8)  # clipped edge tile

    def test_cells_partition(self):
        g = TileGrid.build(0, 100, 120, 16, 16)
        assert sum(t.cells for t in g.tiles) == 100 * 120

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 200), m=st.integers(1, 200),
           th=st.integers(1, 40), tw=st.integers(1, 40))
    def test_partition_property(self, n, m, th, tw):
        g = TileGrid.build(0, n, m, th, tw)
        assert sum(t.cells for t in g.tiles) == n * m
        assert all(1 <= t.rows <= th and 1 <= t.cols <= tw for t in g.tiles)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TileGrid.build(0, 0, 10, 4, 4)


class TestTileGraph:
    def test_initial_ready_one_per_alignment(self):
        graph = _graph(alignments=3)
        ready = graph.initial_ready()
        assert len(ready) == 3
        assert all(t.ti == 0 and t.tj == 0 for t in ready)

    def test_complete_unlocks_neighbours(self):
        graph = _graph()
        (t00,) = graph.initial_ready()
        newly = graph.complete(t00)
        assert {(t.ti, t.tj) for t in newly} == {(0, 1), (1, 0)}

    def test_double_complete_rejected(self):
        graph = _graph()
        (t00,) = graph.initial_ready()
        graph.complete(t00)
        with pytest.raises(SchedulingError, match="twice"):
            graph.complete(t00)

    def test_premature_complete_rejected(self):
        graph = _graph()
        inner = graph.grids[0].tile_at(1, 1)
        with pytest.raises(SchedulingError, match="unmet"):
            graph.complete(inner)

    def test_duplicate_ids_rejected(self):
        g1 = TileGrid.build(0, 10, 10, 4, 4)
        g2 = TileGrid.build(1, 10, 10, 4, 4)  # same id_base -> collision
        with pytest.raises(ValidationError):
            TileGraph([g1, g2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TileGraph([])


class TestDynamicScheduler:
    def test_serial_drain_respects_dependencies(self):
        graph = _graph()
        sched = DynamicWavefrontScheduler(graph, lanes=1)
        seen = set()
        while True:
            block = sched.try_pop()
            if not block:
                break
            for t in block:
                if t.ti > 0:
                    assert (t.ti - 1, t.tj) in seen
                if t.tj > 0:
                    assert (t.ti, t.tj - 1) in seen
                seen.add((t.ti, t.tj))
            sched.complete(block)
        assert sched.done and len(seen) == len(graph)

    def test_vector_blocks_same_shape(self):
        graph = _graph(n=160, m=160, th=16, tw=16, alignments=4)
        sched = DynamicWavefrontScheduler(graph, lanes=4)
        popped = 0
        while True:
            block = sched.try_pop()
            if not block:
                break
            if len(block) > 1:
                assert len(block) == 4
                assert len({t.shape for t in block}) == 1
            popped += len(block)
            sched.complete(block)
        assert popped == len(graph)
        assert sched.block_pops > 0

    def test_threaded_drain(self):
        graph = _graph(n=200, m=200, th=8, tw=8)
        sched = DynamicWavefrontScheduler(graph, lanes=2)
        done = []
        lock = threading.Lock()

        def worker():
            while True:
                block = sched.pop(timeout=10)
                if not block:
                    return
                with lock:
                    done.extend(block)
                sched.complete(block)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(done) == len(graph)
        assert sched.done

    def test_invalid_lanes(self):
        with pytest.raises(SchedulingError):
            DynamicWavefrontScheduler(_graph(), lanes=0)

    def test_partial_blocks_pop_short_vector_blocks(self):
        # 3 same-shape alignments of one tile each: fewer ready tiles than
        # lanes.  Default semantics degrade to scalar singles; with
        # partial_blocks the remainder pops as one short vector block.
        grids = [TileGrid.build(k, 16, 16, 16, 16, id_base=k) for k in range(3)]
        sched = DynamicWavefrontScheduler(TileGraph(grids), lanes=8)
        assert len(sched.try_pop()) == 1
        sched_partial = DynamicWavefrontScheduler(
            TileGraph(grids), lanes=8, partial_blocks=True
        )
        block = sched_partial.try_pop()
        assert len(block) == 3
        assert len({t.shape for t in block}) == 1
        assert sched_partial.block_pops == 1
        sched_partial.complete(block)
        assert sched_partial.done


class TestStaticSchedule:
    def test_diagonal_partition(self):
        graph = _graph()
        sched = StaticWavefrontSchedule(graph, num_threads=4)
        total = sum(len(d) for d in sched.diagonals)
        assert total == len(graph)
        for d, tiles in enumerate(sched.diagonals):
            assert all(t.diagonal == sorted({t.diagonal for t in tiles}).pop() for t in tiles)

    def test_round_robin_balance(self):
        graph = _graph(n=320, m=320, th=16, tw=16)
        sched = StaticWavefrontSchedule(graph, num_threads=4)
        mid = len(sched) // 2
        loads = [len(chunk) for chunk in sched.assignments(mid)]
        assert max(loads) - min(loads) <= 1

    def test_run_serial_completes_all(self):
        graph = _graph()
        sched = StaticWavefrontSchedule(graph, num_threads=3)
        count = [0]
        sched.run_serial(lambda t: count.__setitem__(0, count[0] + 1))
        assert count[0] == len(graph)
        assert graph.done


class TestSimulation:
    def _big_graph(self):
        # Big enough that 16 threads x 16 lanes don't starve on diagonals
        # (the paper's genomes give ~8600 tiles per side; this gives ~490).
        return TileGraph([TileGrid.build(0, 250_000, 250_000, 512, 512)])

    def test_dynamic_completes_all_cells(self):
        res = simulate_dynamic(self._big_graph(), threads=4, lanes=16)
        assert res.total_cells == 250_000 * 250_000
        assert res.makespan > 0 and res.gcups > 0

    def test_dynamic_speedup_monotone(self):
        g1 = simulate_dynamic(self._big_graph(), 1, lanes=16).gcups
        g4 = simulate_dynamic(self._big_graph(), 4, lanes=16).gcups
        g16 = simulate_dynamic(self._big_graph(), 16, lanes=16).gcups
        assert g1 < g4 < g16

    def test_static_saturates(self):
        # Amdahl: the serial per-diagonal phase caps static speedup.
        g1 = simulate_static(self._big_graph(), 1).gcups
        g16 = simulate_static(self._big_graph(), 16).gcups
        g32 = simulate_static(self._big_graph(), 32).gcups
        assert g16 / g1 < 4.0  # paper: 15% efficiency => speedup 2.4
        assert g32 / g1 < 4.5

    def test_dynamic_beats_static_at_scale(self):
        d = simulate_dynamic(self._big_graph(), 16, lanes=16)
        s = simulate_static(self._big_graph(), 16)
        assert d.gcups > 3 * s.gcups

    def test_paper_efficiency_shape(self):
        # Paper §V: dynamic ~75%/65% at 16/32 threads; static ~15%/8%.
        d1 = simulate_dynamic(self._big_graph(), 1, lanes=16).gcups
        s1 = simulate_static(self._big_graph(), 1).gcups
        d16 = simulate_dynamic(self._big_graph(), 16, lanes=16).gcups / (16 * d1)
        s16 = simulate_static(self._big_graph(), 16).gcups / (16 * s1)
        s32 = simulate_static(self._big_graph(), 32).gcups / (32 * s1)
        assert 0.6 < d16 < 0.9
        assert 0.10 < s16 < 0.20
        assert 0.05 < s32 < 0.12

    def test_busy_fraction_bounded(self):
        res = simulate_dynamic(self._big_graph(), 8, lanes=16)
        assert 0 < res.busy_fraction <= 1.0 + 1e-9

    def test_multi_alignment_balancing(self):
        # Several different-size alignments together (paper Fig. 3) keep
        # threads busier than the largest alignment alone at high P.
        sizes = [(30_000, 30_000), (20_000, 25_000), (10_000, 12_000), (5_000, 9_000)]
        grids = []
        base = 0
        for k, (n, m) in enumerate(sizes):
            g = TileGrid.build(k, n, m, 512, 512, id_base=base)
            base += len(g)
            grids.append(g)
        multi = simulate_dynamic(TileGraph(grids), 32, lanes=16)
        single = simulate_dynamic(
            TileGraph([TileGrid.build(0, 30_000, 30_000, 512, 512)]), 32, lanes=16
        )
        assert multi.busy_fraction >= single.busy_fraction - 0.05

    def test_cost_model_rates(self):
        cm = CostModel()
        assert cm.tile_seconds(1000, vectorized=True) < cm.tile_seconds(1000, vectorized=False)
        assert cm.tile_seconds(1000, True, threads=32) > cm.tile_seconds(1000, True, threads=1)

    def test_invalid_threads(self):
        with pytest.raises(ValidationError):
            simulate_dynamic(self._big_graph(), 0)
