"""Tests for the HTTP introspection server (repro.obs.server) and the
full telemetry loop.

Two halves:

* endpoint mechanics against injected fake sources — routes, status
  codes, content types, query parameters, HEAD/405/404/400 handling,
  callable source re-resolution, and the lifecycle contract;
* the PR's acceptance path, end to end: a ``ShardRouter`` fronting a
  resident ``ShardWorkerPool`` serves live traffic while an
  ``IntrospectionServer`` scrapes it; injected bad latency on NORMAL
  traffic drives the fast burn-rate pair over threshold, BULK is shed at
  admission (visible on the dedicated counters), INTERACTIVE keeps
  resolving, accepted search results stay bit-identical to the
  untelemetered path, and ``/tracez`` passes the Chrome-trace validator.
"""

import asyncio
import json

import pytest

from repro.obs import (
    HealthRegistry,
    IntrospectionServer,
    LogSink,
    Logger,
    MetricsRegistry,
    ProbeResult,
    SLObjective,
    SLOTracker,
    Tracer,
    disable_tracing,
    enable_tracing,
    validate_chrome_trace,
)
from repro.search import SearchConfig, search_topk
from repro.serve import Priority, ServiceOverloadedError
from repro.shard import ShardPlan, ShardRouter, ShardWorkerPool
from repro.util.checks import ReproError

from helpers import hit_keys, planted_instance


async def fetch(server, path, method="GET"):
    """Minimal HTTP client: (status, headers, body) for one request."""
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- endpoint mechanics ------------------------------------------------------
class TestEndpoints:
    def test_surfaces(self):
        async def main():
            registry = MetricsRegistry()
            registry.counter("demo_total", "A demo counter").inc(3)
            tracer = Tracer(capacity=16, enabled=True)
            with tracer.span("unit"):
                pass
            health = HealthRegistry()
            health.add_probe("up", lambda: True)
            sink = LogSink(min_level="debug", rate=1e9, burst=1e9)
            log = Logger("test", sink)
            log.info("one")
            log.error("two")
            slo = SLOTracker(
                [SLObjective(name="obj")], clock=FakeClock()
            )
            async with IntrospectionServer(
                registry=registry,
                tracer=tracer,
                health=health,
                slo=slo,
                logs=sink,
                varz=lambda: {"custom": True},
            ) as server:
                status, headers, body = await fetch(server, "/")
                assert status == 200 and b"/metrics" in body

                status, headers, body = await fetch(server, "/metrics")
                assert status == 200
                assert "version=0.0.4" in headers["content-type"]
                assert b"demo_total 3" in body

                status, _, body = await fetch(server, "/healthz")
                assert status == 200
                doc = json.loads(body)
                assert doc["kind"] == "liveness" and doc["healthy"]

                status, _, body = await fetch(server, "/readyz")
                assert status == 200 and json.loads(body)["kind"] == "readiness"

                status, _, body = await fetch(server, "/slo")
                assert status == 200
                assert json.loads(body)["objectives"][0]["name"] == "obj"

                status, headers, body = await fetch(server, "/tracez")
                assert status == 200
                trace = json.loads(body)
                assert validate_chrome_trace(trace)["spans"] == 1

                status, headers, body = await fetch(server, "/logz")
                assert status == 200 and "ndjson" in headers["content-type"]
                messages = [json.loads(l)["message"] for l in body.splitlines()]
                assert messages == ["one", "two"]

                status, _, body = await fetch(server, "/logz?n=1&level=error")
                assert [json.loads(l)["message"] for l in body.splitlines()] == ["two"]

                status, _, body = await fetch(server, "/varz")
                assert status == 200 and json.loads(body) == {"custom": True}
            return True

        assert asyncio.run(main())

    def test_unhealthy_probe_gives_503(self):
        async def main():
            health = HealthRegistry()
            health.add_probe("down", lambda: ProbeResult(False, "broken"))
            async with IntrospectionServer(
                registry=MetricsRegistry(), health=health
            ) as server:
                status, _, body = await fetch(server, "/healthz")
                assert status == 503
                doc = json.loads(body)
                assert not doc["healthy"] and "broken" in doc["probes"]["down"]["detail"]
            return True

        assert asyncio.run(main())

    def test_error_paths(self):
        async def main():
            async with IntrospectionServer(registry=MetricsRegistry()) as server:
                status, _, body = await fetch(server, "/nope")
                assert status == 404 and b"/nope" in body
                status, _, _ = await fetch(server, "/metrics", method="POST")
                assert status == 405
                status, _, _ = await fetch(server, "/slo")
                assert status == 404  # no tracker injected
                status, _, _ = await fetch(server, "/logz?n=wat")
                assert status == 400
                # HEAD: headers only, correct length advertised.
                status, headers, body = await fetch(server, "/metrics", method="HEAD")
                assert status == 200 and body == b""
                assert int(headers["content-length"]) >= 0
                # A broken source is a 500 on that request, not a dead server.
                def boom():
                    raise RuntimeError("source died")

                server._registry = boom
                status, _, body = await fetch(server, "/metrics")
                assert status == 500 and b"RuntimeError" in body
                server._registry = MetricsRegistry()
                status, _, _ = await fetch(server, "/metrics")
                assert status == 200
            return True

        assert asyncio.run(main())

    def test_callable_sources_resolve_per_request(self):
        async def main():
            registries = [MetricsRegistry(), MetricsRegistry()]
            registries[1].counter("second_total").inc()
            box = {"i": 0}

            def source():
                return registries[box["i"]]

            async with IntrospectionServer(registry=source) as server:
                _, _, body = await fetch(server, "/metrics")
                assert b"second_total" not in body
                box["i"] = 1
                _, _, body = await fetch(server, "/metrics")
                assert b"second_total 1" in body
            return True

        assert asyncio.run(main())

    def test_lifecycle(self):
        async def main():
            server = IntrospectionServer(registry=MetricsRegistry())
            assert not server.started
            with pytest.raises(ReproError):
                server.port
            await server.start()
            await server.start()  # idempotent
            port = server.port
            assert server.url == f"http://127.0.0.1:{port}"
            await fetch(server, "/")
            assert server.requests == 1
            await server.close()
            await server.close()  # idempotent
            assert not server.started
            return True

        assert asyncio.run(main())


# -- the acceptance path -----------------------------------------------------
def _plan(num_shards=2, **search_kw):
    return ShardPlan(
        num_shards=num_shards,
        search=SearchConfig(**search_kw),
        start_method="fork",
    )


class TestTelemetryLoop:
    def test_router_pool_burn_shed_and_bit_identical_results(self):
        ref, queries, _ = planted_instance(8000, 3, 80, seed=81)
        untelemetered = hit_keys(search_topk(queries, ref, k=3))
        clock = FakeClock()
        tracker = SLOTracker(
            [
                # Impossible latency bound: every completed NORMAL request
                # is "bad", so real traffic drives the burn deterministically.
                SLObjective(
                    name="normal-lat", target=0.99, latency_s=1e-9, priority="NORMAL"
                ),
                SLObjective(
                    name="interactive", target=0.5, latency_s=30.0,
                    priority="INTERACTIVE",
                ),
            ],
            clock=clock,
        )
        tracer = enable_tracing(capacity=16384)
        tracer.clear()
        try:
            with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
                pool.start()

                async def main():
                    router = ShardRouter(
                        2, pool=pool, search_kwargs={"k": 3}, slo=tracker
                    )
                    server = IntrospectionServer(
                        registry=router.scrape_registry,
                        health=router.health,
                        slo=tracker,
                    )
                    async with router, server:
                        # Healthy phase: searches resolve, readiness is green.
                        before = [await router.submit_search(q) for q in queries]
                        status, _, _ = await fetch(server, "/readyz")
                        assert status == 200
                        assert not tracker.fast_burn_active()

                        # Inject burn: NORMAL completions all violate the
                        # impossible bound; both fast windows light up.
                        for i in range(30):
                            await router.submit(queries[0], queries[1])
                            clock.advance(1.0)
                        assert tracker.fast_burn_active()
                        assert {a.objective for a in tracker.alerts()} == {
                            "normal-lat"
                        }

                        # BULK is shed at both front doors...
                        with pytest.raises(ServiceOverloadedError, match="shed"):
                            await router.submit(
                                queries[0], queries[1], priority=Priority.BULK
                            )
                        with pytest.raises(ServiceOverloadedError, match="shed"):
                            await router.submit_search(
                                queries[0], priority=Priority.BULK
                            )
                        # ...while INTERACTIVE rides through and its
                        # objective keeps its budget.
                        score = await router.submit(
                            queries[0], queries[1], priority=Priority.INTERACTIVE
                        )
                        assert isinstance(score, int)
                        assert tracker.budget("interactive")["bad"] == 0

                        # Accepted work is never dropped: searches during
                        # the burn match the untelemetered hits bit for bit.
                        during = [await router.submit_search(q) for q in queries]
                        assert hit_keys(during) == untelemetered
                        assert hit_keys(before) == untelemetered

                        # Every shed decision is on the dedicated counters.
                        scrape = router.scrape_registry()
                        shed = scrape.get("serve_admission_rejected_total")
                        assert sum(
                            count
                            for key, count in shed.series().items()
                            if key[:2] == ("shed", "BULK")
                        ) == 1
                        assert (
                            scrape.get("router_rejected_total").value(cause="shed")
                            == 1
                        )

                        # And the scrape surfaces agree over HTTP.
                        status, _, body = await fetch(server, "/metrics")
                        assert status == 200
                        text = body.decode()
                        assert 'serve_admission_rejected_total{cause="shed"' in text
                        assert 'router_rejected_total{cause="shed"}' in text
                        status, _, body = await fetch(server, "/slo")
                        doc = json.loads(body)
                        assert [a["objective"] for a in doc["alerts"]] == [
                            "normal-lat",
                            "normal-lat",
                        ]
                        status, _, body = await fetch(server, "/tracez")
                        summary = validate_chrome_trace(
                            json.loads(body), require_worker_process=True
                        )
                        assert summary["spans"] > 0
                        status, _, body = await fetch(server, "/logz?level=warning")
                        messages = [
                            json.loads(line)["message"]
                            for line in body.splitlines()
                        ]
                        assert any("shed" in m for m in messages)
                        status, _, _ = await fetch(server, "/varz")
                        assert status == 200
                    return True

                assert asyncio.run(main())
                assert not pool.closed  # the router only borrowed it
        finally:
            disable_tracing()
            tracer.clear()
            from repro.obs import get_log_sink

            get_log_sink().clear()
