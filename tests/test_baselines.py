"""Tests for the comparator reimplementations (repro.baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BASELINES,
    NvbioLikeAligner,
    ParasailLikeAligner,
    SeqAnLikeAligner,
    SswLikeAligner,
)
from repro.core.recurrence import score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.gpu import GpuAligner
from repro.util.checks import ValidationError
from repro.util.encoding import encode

SUB = simple_subst_scoring(2, -1)
SCHEMES = {
    "global-linear": global_scheme(linear_gap_scoring(SUB, -1)),
    "global-affine": global_scheme(affine_gap_scoring(SUB, -2, -1)),
    "local-linear": local_scheme(linear_gap_scoring(SUB, -1)),
    "local-affine": local_scheme(affine_gap_scoring(SUB, -2, -1)),
    "semiglobal-linear": semiglobal_scheme(linear_gap_scoring(SUB, -1)),
    "semiglobal-affine": semiglobal_scheme(affine_gap_scoring(SUB, -2, -1)),
}


def _pair(rng, hi=100):
    n, m = rng.integers(2, hi, 2)
    return (
        rng.integers(0, 4, n).astype(np.uint8),
        rng.integers(0, 4, m).astype(np.uint8),
    )


class TestRegistry:
    def test_all_registered(self):
        assert set(BASELINES) >= {"seqan", "parasail", "ssw", "nvbio"}

    def test_names_attached(self):
        assert SeqAnLikeAligner.baseline_name == "seqan"


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestSeqAnLike:
    def test_matches_reference(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(hash(name) % 2**32)
        for _ in range(5):
            q, s = _pair(rng)
            assert SeqAnLikeAligner(scheme, tile=(32, 48)).score(q, s) == score_reference(
                q, s, scheme
            )


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestParasailLike:
    def test_matches_reference(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng((hash(name) + 1) % 2**32)
        for _ in range(5):
            q, s = _pair(rng)
            assert ParasailLikeAligner(scheme, tile=(32, 48)).score(
                q, s
            ) == score_reference(q, s, scheme)

    def test_linear_is_affinized(self, name):
        # Paper §V: Parasail always computes affine gaps, even for Go=0.
        aligner = ParasailLikeAligner(SCHEMES[name])
        assert aligner.scheme.scoring.is_affine


class TestSswLike:
    @pytest.mark.parametrize("name", ["local-linear", "local-affine"])
    @pytest.mark.parametrize("lanes", [4, 16])
    def test_matches_reference(self, name, lanes):
        scheme = SCHEMES[name]
        rng = np.random.default_rng((hash(name) + lanes) % 2**32)
        for _ in range(6):
            q, s = _pair(rng)
            assert SswLikeAligner(scheme, lanes=lanes).score(q, s) == score_reference(
                q, s, scheme
            )

    def test_rejects_non_local(self):
        with pytest.raises(ValidationError, match="local"):
            SswLikeAligner(SCHEMES["global-linear"])

    @settings(max_examples=15, deadline=None)
    @given(
        q=st.text(alphabet="ACGT", min_size=2, max_size=70),
        s=st.text(alphabet="ACGT", min_size=2, max_size=70),
    )
    def test_lazy_f_property(self, q, s):
        scheme = SCHEMES["local-affine"]
        a = SswLikeAligner(scheme, lanes=8)
        assert a.score(encode(q), encode(s)) == score_reference(
            encode(q), encode(s), scheme
        )
        assert a.lazy_f_passes >= len(s)  # at least one pass per column


class TestNvbioLike:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_matches_reference(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng((hash(name) + 7) % 2**32)
        q, s = _pair(rng)
        assert NvbioLikeAligner(scheme, tile=(32, 48)).score(q, s) == score_reference(
            q, s, scheme
        )

    def test_anyseq_wins_by_paper_ratio_long(self):
        scheme = SCHEMES["global-linear"]
        anyseq = GpuAligner(scheme).model_gcups_at(4_411_532, 4_641_652)
        nvbio = NvbioLikeAligner(scheme).model_gcups_at(4_411_532, 4_641_652)
        assert 1.02 < anyseq / nvbio < 1.15  # paper: up to 1.1

    def test_anyseq_wins_by_paper_ratio_reads(self):
        scheme = SCHEMES["global-linear"]
        anyseq = GpuAligner(scheme).model_gcups_batch(1_000_000, 150, 166)
        nvbio = NvbioLikeAligner(scheme).model_gcups_batch(1_000_000, 150, 166)
        assert 1.05 < anyseq / nvbio < 1.2  # paper: up to 1.12
