"""Tests for the read-mapping subsystem (repro.mapping).

The contract under test, end to end: ``map_reads`` (seed + extend fast
path) is **bit-identical** to ``exhaustive_map`` (full-DP oracle) when
``min_score`` sits above the random-junk noise floor, and the
single-process result is bit-identical to every distributed serving
path — pool-served (``ShardWorkerPool.map_topk``), service
(``AlignmentService.submit_map``), and router (both services and pool
backends).  Identity is compared on ``placement_key`` — (record,
ref_start, ref_end, strand, score, cigar, clip coords) — so any drift
in extension, dedup, or merge order fails loudly.

``MIN_SCORE = 120`` for 80 bp reads at match=+2 is ~0.75 x the perfect
score — above the ~90-100 junk-alignment floor that unseeded random
placements reach through cheap end gaps (the oracle finds those, the
seed prefilter by design cannot).
"""

import asyncio
import random

import numpy as np
import pytest

from repro.mapping import (
    MappingConfig,
    PlacementDedup,
    exhaustive_map,
    map_one,
    map_reads,
    merge_mapped,
    placement_key,
    placement_rank,
    resolve_config,
    true_origin_accuracy,
)
from repro.mapping.cigar import apply_cigar, parse_cigar
from repro.mapping.extend import extend_hit
from repro.search import SearchConfig
from repro.search.pipeline import search
from repro.search.topk import Hit, TopKReducer, merge_topk
from repro.serve.service import AlignmentService
from repro.shard.plan import ShardPlan
from repro.shard.pool import ShardWorkerPool
from repro.shard.router import ShardRouter
from repro.util.checks import ValidationError
from repro.util.encoding import decode, encode
from repro.workloads.reads import read_pairs

MIN_SCORE = 120  # 0.75 x perfect for 80 bp reads at match=+2


def keys(per_read):
    return [[placement_key(p) for p in ps] for ps in per_read]


@pytest.fixture(scope="module")
def workload():
    """One shared read set: 24 x 80 bp paired reads over a 12 kb genome."""
    rs = read_pairs(24, read_length=80, reference_length=12_000, seed=7)
    return rs, rs.reference


class TestResolveConfig:
    def test_kwargs_split_between_mapping_and_search(self):
        cfg = resolve_config(None, k=3, min_score=50, traceback="full")
        assert cfg.k == 3
        assert cfg.traceback == "full"
        assert cfg.search.min_score == 50

    def test_k_is_mapping_level(self):
        # Bare k= sets the placement budget, not the hit top-K.
        base = MappingConfig()
        cfg = resolve_config(None, k=2)
        assert cfg.k == 2
        assert cfg.search.k == base.search.k

    def test_config_passes_through(self):
        cfg = MappingConfig(k=4, both_strands=False)
        assert resolve_config(cfg) is cfg

    def test_config_plus_overrides(self):
        cfg = resolve_config(MappingConfig(k=4), min_score=77)
        assert cfg.k == 4
        assert cfg.search.min_score == 77

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ValidationError):
            resolve_config(None, bogus=1)

    def test_invalid_traceback_rejected(self):
        with pytest.raises(ValidationError):
            MappingConfig(traceback="diagonal")

    def test_default_verify_is_full(self):
        # Banded verify clips boundary-straddling scores, which would
        # break min_score parity with the oracle; mapping defaults to
        # exact window scores.
        assert MappingConfig().search.verify == "full"


class TestHitMetaPassthrough:
    """Satellite regression: opaque hit metadata through merges."""

    def _hit(self, qid, start, score, chunk_id, meta=None):
        return Hit(
            query_id=qid,
            record="ref",
            start=start,
            end=start + 100,
            score=score,
            chunk_id=chunk_id,
            meta=meta,
        )

    def test_meta_carried_through_merge_unchanged(self):
        meta = {"diag_lo": 3, "diag_hi": 9, "window": np.arange(4, dtype=np.uint8)}
        shard_a = [[self._hit(0, 0, 50, 0, meta)]]
        shard_b = [[self._hit(0, 100, 40, 1, None)]]
        merged = merge_topk([shard_a, shard_b], num_queries=1, k=5)
        assert merged[0][0].meta is meta  # same object, byte-for-byte
        assert merged[0][1].meta is None

    def test_meta_does_not_affect_tie_order(self):
        # Two score-tied hits: rank prefers the earlier window/chunk
        # whether or not metadata rides along.
        def run(with_meta):
            m = {"diag_lo": 0, "diag_hi": 1} if with_meta else None
            a = [[self._hit(0, 200, 50, 2, m)]]
            b = [[self._hit(0, 100, 50, 1, None)]]
            return [
                (h.start, h.chunk_id)
                for h in merge_topk([a, b], num_queries=1, k=5)[0]
            ]

        assert run(True) == run(False) == [(100, 1), (200, 2)]

    def test_meta_excluded_from_equality(self):
        a = self._hit(0, 0, 50, 0, {"diag_lo": 1})
        b = self._hit(0, 0, 50, 0, None)
        assert a == b

    def test_reducer_offer_retains_meta(self):
        red = TopKReducer(1, k=2)

        class _Chunk:
            record, start, end, id = "ref", 0, 100, 0

        meta = {"diag_lo": 5, "diag_hi": 7}
        red.offer(0, _Chunk, 42, meta=meta)
        assert red.results()[0][0].meta is meta


class TestExtend:
    def test_banded_and_full_modes_agree(self, workload):
        rs, ref = workload
        fast = map_reads(rs, ref, min_score=MIN_SCORE, traceback="banded")
        full = map_reads(rs, ref, min_score=MIN_SCORE, traceback="full")
        assert keys(fast.placements) == keys(full.placements)
        # The banded path actually engaged (certificate accepts), and the
        # full run never touched the banded counters.
        assert fast.extend.banded > 0
        assert full.extend.full == full.extend.hits
        assert fast.extend.cells <= full.extend.cells

    def test_placement_scores_are_exact(self, workload):
        # Placement.score is the traceback score, never the (possibly
        # banded) verify score — re-deriving the alignment from the CIGAR
        # and rescoring the M columns must be consistent.
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        seen = 0
        for ps in res.placements:
            for p in ps:
                assert p.score >= MIN_SCORE
                assert p.ref_end > p.ref_start
                seen += 1
        assert seen > 0

    def test_cigar_reconstructs_against_reference(self, workload):
        # Apply each placement's CIGAR to the read and the *reference*
        # slice it claims: the M/D runs must consume exactly
        # [ref_start, ref_end) and reproduce reference bases verbatim.
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        checked = 0
        for rid, ps in enumerate(res.placements):
            read = encode(rs.reads[rid])
            for p in ps:
                q = read if p.strand == "+" else read[::-1] ^ np.uint8(3)
                window = ref[p.ref_start : p.ref_end]
                qa, sa = apply_cigar(parse_cigar(p.cigar), q, window)
                assert sa.replace("-", "") == decode(window)
                assert qa.replace("-", "") == decode(
                    q[p.query_start : p.query_end]
                )
                checked += 1
        assert checked > 0

    def test_extend_hit_fallback_on_clipped_band(self):
        # A lying envelope (far off the true diagonal) forces the
        # certificate to reject the banded slice and fall back to the
        # full window; the placement must still be exact.
        rng = np.random.default_rng(0)
        window = rng.integers(0, 4, 400).astype(np.uint8)
        query = window[200:280].copy()
        scheme = MappingConfig().search.resolved_scheme()
        hit_kwargs = dict(
            query_id=0, record="ref", start=0, end=400, chunk_id=0, score=160
        )
        honest = Hit(**hit_kwargs, meta={"diag_lo": 200, "diag_hi": 200})
        lying = Hit(**hit_kwargs, meta={"diag_lo": 0, "diag_hi": 0})
        p_honest = extend_hit(query, honest, scheme, window=window)
        p_lying = extend_hit(query, lying, scheme, window=window)
        assert placement_key(p_honest) == placement_key(p_lying)
        assert p_honest.ref_start == 200 and p_honest.score == 160


class TestOracleIdentity:
    def test_map_reads_bit_identical_to_exhaustive(self, workload):
        rs, ref = workload
        fast = map_reads(rs, ref, min_score=MIN_SCORE)
        oracle = exhaustive_map(rs, ref, min_score=MIN_SCORE)
        assert keys(fast.placements) == keys(oracle.placements)
        assert oracle.oracle and not fast.oracle

    @pytest.mark.parametrize("seed", [3, 42])
    def test_identity_across_seeds(self, seed):
        rs = read_pairs(12, read_length=80, reference_length=8_000, seed=seed)
        fast = map_reads(rs, rs.reference, min_score=MIN_SCORE)
        oracle = exhaustive_map(rs, rs.reference, min_score=MIN_SCORE)
        assert keys(fast.placements) == keys(oracle.placements)

    def test_true_origin_accuracy(self, workload):
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        assert true_origin_accuracy(res, rs.origins()) == 1.0

    def test_both_strands_recovered(self, workload):
        # read_pairs alternates strands; every read must map back to its
        # sampled orientation.
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        strands = {res.best(i).strand for i in range(len(rs)) if res.best(i)}
        assert strands == {"+", "-"}
        for i in range(len(rs)):
            best = res.best(i)
            assert best is not None and best.strand == rs.strand_of(i)

    def test_map_one_matches_map_reads_row(self, workload):
        # Keys are context-free: a read mapped alone (query_id 0) must
        # compare equal to its batch row (query_id i).
        rs, ref = workload
        batch = map_reads(rs, ref, min_score=MIN_SCORE)
        for i in (0, 3, 7):
            single = map_one(rs.reads[i], ref, min_score=MIN_SCORE)
            assert [placement_key(p) for p in single] == [
                placement_key(p) for p in batch.placements[i]
            ]

    def test_empty_reads(self, workload):
        _rs, ref = workload
        res = map_reads([], ref, min_score=MIN_SCORE)
        assert res.num_reads == 0 and res.placements == []
        oracle = exhaustive_map([], ref, min_score=MIN_SCORE)
        assert oracle.placements == []
        assert res.report()  # renders without a search-stats table

    def test_result_report_renders(self, workload):
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        text = res.report()
        assert "Read mapping" in text and "Hit search pipeline" in text
        assert str(res.num_reads) in text


class TestDedupMerge:
    def test_placement_rank_is_total_and_score_first(self, workload):
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE, k=5)
        for ps in res.placements:
            ranks = [placement_rank(p) for p in ps]
            assert ranks == sorted(ranks, reverse=True)
            # Strictly decreasing — the order is total, no rank ties.
            assert all(a > b for a, b in zip(ranks, ranks[1:]))

    def test_dedup_collapses_duplicates(self, workload):
        rs, ref = workload
        res = map_reads(rs, ref, min_score=MIN_SCORE)
        dd = PlacementDedup(num_reads=len(rs), k=5)
        for ps in res.placements:
            for p in ps:
                dd.offer(p)
                dd.offer(p)  # same placement again — must collapse
        assert dd.stats.duplicates >= dd.stats.kept
        assert keys(dd.results()) == keys(res.placements)

    def test_merge_is_order_independent(self, workload):
        # The sharded-merge invariant: however per-shard placement lists
        # are ordered or grouped, the merged result is identical.
        rs, ref = workload
        cfg = resolve_config(None, min_score=MIN_SCORE)
        from repro.mapping.mapper import shard_map_placements

        per_read, _stats, _ext = shard_map_placements(list(rs.reads), ref, cfg)
        n, orient = len(rs), cfg.orientations()

        def merge(shard_lists):
            return merge_mapped(
                shard_lists,
                num_reads=n,
                num_oriented=n * orient,
                hit_k=cfg.search.k,
                k=cfg.k,
                min_score=cfg.search.min_score,
            )

        want = merge([per_read])
        # Split placements across two fake "shards", several shufflings.
        rng = random.Random(13)
        for _ in range(3):
            a = [[], []]
            for ps in per_read:
                rows = [[], []]
                for p in ps:
                    rows[rng.randrange(2)].append(p)
                for s in (0, 1):
                    rng.shuffle(rows[s])
                    a[s].append(rows[s])
            got = merge([a[0], a[1]])
            assert keys(got) == keys(want)


class TestPoolParity:
    def test_pool_map_topk_bit_identical(self, workload):
        rs, ref = workload
        direct = map_reads(rs, ref, min_score=MIN_SCORE)
        want = keys(direct.placements)
        reads = [rs.reads[i] for i in range(len(rs))]
        plan = ShardPlan(num_shards=3, search=SearchConfig(), start_method="fork")
        with ShardWorkerPool(ref, plan=plan) as pool:
            cold = pool.map_topk(reads, min_score=MIN_SCORE)
            assert keys(cold) == want
            warm = pool.map_topk(reads, min_score=MIN_SCORE)
            assert keys(warm) == want
            snap = pool.stats.snapshot()
            assert snap["searches"] == 2 and snap["warm_searches"] == 1


class TestServeRouter:
    def test_service_submit_map_matches_direct(self, workload):
        rs, ref = workload

        async def main():
            async with AlignmentService(
                database=ref, map_kwargs={"min_score": MIN_SCORE}
            ) as svc:
                return await asyncio.gather(
                    *(svc.submit_map(rs.reads[i]) for i in range(4))
                )

        got = asyncio.run(main())
        for i, ps in enumerate(got):
            want = map_one(rs.reads[i], ref, min_score=MIN_SCORE)
            assert [placement_key(p) for p in ps] == [
                placement_key(p) for p in want
            ]

    def test_service_partial_returns_prededup_with_hits(self, workload):
        rs, ref = workload

        async def main():
            async with AlignmentService(
                database=ref, map_kwargs={"min_score": MIN_SCORE}
            ) as svc:
                return await svc.submit_map(rs.reads[0], partial=True)

        per_read = asyncio.run(main())
        assert len(per_read) == 1 and len(per_read[0]) >= 1
        # Partials keep their source hits (the merge replays the hit
        # top-K) but never ship window bases across the boundary.
        for p in per_read[0]:
            assert p.hit is not None
            assert p.hit.meta is None or "window" not in p.hit.meta

    def test_router_services_path_matches_direct(self, workload):
        rs, ref = workload

        async def main():
            async with ShardRouter(
                num_shards=3,
                database=ref,
                max_query=80,
                map_kwargs={"min_score": MIN_SCORE},
            ) as router:
                return await asyncio.gather(
                    *(router.submit_map(rs.reads[i]) for i in range(4))
                )

        got = asyncio.run(main())
        for i, ps in enumerate(got):
            want = map_one(rs.reads[i], ref, min_score=MIN_SCORE)
            assert [placement_key(p) for p in ps] == [
                placement_key(p) for p in want
            ]

    def test_router_pool_path_matches_direct(self, workload):
        rs, ref = workload
        plan = ShardPlan(num_shards=2, search=SearchConfig(), start_method="fork")

        async def main(pool):
            async with ShardRouter(
                num_shards=2, pool=pool, map_kwargs={"min_score": MIN_SCORE}
            ) as router:
                return [await router.submit_map(rs.reads[i]) for i in range(4)]

        with ShardWorkerPool(ref, plan=plan) as pool:
            got = asyncio.run(main(pool))
        for i, ps in enumerate(got):
            want = map_one(rs.reads[i], ref, min_score=MIN_SCORE)
            assert [placement_key(p) for p in ps] == [
                placement_key(p) for p in want
            ]
