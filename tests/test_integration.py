"""Cross-module integration tests: workloads → backends → results."""

import numpy as np
import pytest

from repro.baselines import (
    NvbioLikeAligner,
    ParasailLikeAligner,
    SeqAnLikeAligner,
    SswLikeAligner,
)
from repro.core import Aligner, align_linear_space, rescore_alignment
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.cpu import AVX2, SimdBatchAligner, WavefrontAligner
from repro.fpga import SystolicAligner
from repro.gpu import GpuAligner
from repro.workloads import (
    FastaRecord,
    read_fasta,
    read_pairs,
    related_pair,
    simulate_reads,
    table1_pair,
    write_fasta,
)

SUB = simple_subst_scoring(2, -1)


class TestAllBackendsAgree:
    """The paper's whole point: one scheme, many mappings, one answer."""

    @pytest.mark.parametrize(
        "scheme",
        [
            global_scheme(linear_gap_scoring(SUB, -1)),
            global_scheme(affine_gap_scoring(SUB, -2, -1)),
            semiglobal_scheme(affine_gap_scoring(SUB, -2, -1)),
        ],
        ids=["global-linear", "global-affine", "semiglobal-affine"],
    )
    def test_genome_pair_all_backends(self, scheme):
        pair = related_pair(400, divergence=0.12, seed=77)
        scores = {
            "rowscan": Aligner(scheme).score(pair.query, pair.subject),
            "scalar": Aligner(scheme, backend="scalar").score(pair.query, pair.subject),
            "wavefront": WavefrontAligner(scheme, tile=(64, 96)).score(
                pair.query, pair.subject
            ),
            "gpu": GpuAligner(scheme, tile=(64, 64)).score(pair.query, pair.subject),
            "fpga": SystolicAligner(scheme, k_pe=64).score(pair.query, pair.subject),
            "seqan": SeqAnLikeAligner(scheme, tile=(64, 96)).score(
                pair.query, pair.subject
            ),
            "parasail": ParasailLikeAligner(scheme, tile=(64, 96)).score(
                pair.query, pair.subject
            ),
            "nvbio": NvbioLikeAligner(scheme, tile=(64, 64)).score(
                pair.query, pair.subject
            ),
        }
        assert len(set(scores.values())) == 1, scores

    def test_local_backends_including_ssw(self):
        scheme = local_scheme(affine_gap_scoring(SUB, -2, -1))
        pair = related_pair(300, divergence=0.2, seed=78)
        a = Aligner(scheme).score(pair.query, pair.subject)
        b = SswLikeAligner(scheme, lanes=16).score(pair.query, pair.subject)
        c = GpuAligner(scheme, tile=(48, 48)).score(pair.query, pair.subject)
        assert a == b == c


class TestReadMappingPipeline:
    def test_end_to_end_mapping(self):
        scheme = semiglobal_scheme(linear_gap_scoring(SUB, -1))
        rs = read_pairs(64, read_length=80, reference_length=20_000, seed=41)
        scores = SimdBatchAligner(scheme, AVX2).score_batch(rs.reads, rs.windows)
        # Every read must align with a sane score, and tracebacks must
        # rescore to the batch scores exactly.
        assert (scores > 2 * 80 * 0.7).all()
        for k in range(0, 64, 16):
            res = align_linear_space(rs.reads[k], rs.windows[k], scheme)
            assert res.score == scores[k]
            assert (
                rescore_alignment(res.query_aligned, res.subject_aligned, scheme.scoring)
                == res.score
            )

    def test_error_free_reads_score_perfect(self):
        from repro.workloads import IlluminaProfile, random_genome

        scheme = semiglobal_scheme(linear_gap_scoring(SUB, -1))
        ref = random_genome(10_000, seed=42)
        rs = simulate_reads(ref, 16, read_length=100, profile=IlluminaProfile(0, 0, 0, 0), seed=43)
        scores = SimdBatchAligner(scheme, AVX2).score_batch(rs.reads, rs.windows)
        assert (scores == 200).all()


class TestFastaRoundtripAlignment:
    def test_fasta_to_alignment(self, tmp_path):
        pair = table1_pair("bacteria", scale=20_000, seed=44)
        path = tmp_path / "pair.fa"
        write_fasta(
            [FastaRecord("q", pair.query), FastaRecord("s", pair.subject)], path=path
        )
        q, s = read_fasta(path)
        scheme = global_scheme(linear_gap_scoring(SUB, -1))
        res = align_linear_space(q.sequence, s.sequence, scheme)
        assert res.score == Aligner(scheme).score(pair.query, pair.subject)


class TestSchedulerKernelConsistency:
    def test_score_many_vs_individual_backends(self):
        scheme = global_scheme(affine_gap_scoring(SUB, -2, -1))
        rng = np.random.default_rng(45)
        pairs = [
            (
                rng.integers(0, 4, int(rng.integers(60, 140))).astype(np.uint8),
                rng.integers(0, 4, int(rng.integers(60, 140))).astype(np.uint8),
            )
            for _ in range(8)
        ]
        wa = WavefrontAligner(scheme, tile=(32, 32), lanes=4)
        batched = wa.score_many(pairs)
        singles = [Aligner(scheme).score(q, s) for q, s in pairs]
        assert batched == singles
