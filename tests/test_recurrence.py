"""Tests for the reference DP (repro.core.recurrence) against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recurrence import align_reference, dp_matrices, score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    matrix_subst_scoring,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.core.types import AlignmentType
from repro.util.encoding import encode

from helpers import assert_valid_result, brute_force, random_dna_str

SUB = simple_subst_scoring(2, -1)
LINEAR = linear_gap_scoring(SUB, -1)
AFFINE = affine_gap_scoring(SUB, -2, -1)

SCHEMES = {
    "global-linear": global_scheme(LINEAR),
    "global-affine": global_scheme(AFFINE),
    "local-linear": local_scheme(LINEAR),
    "local-affine": local_scheme(AFFINE),
    "semiglobal-linear": semiglobal_scheme(LINEAR),
    "semiglobal-affine": semiglobal_scheme(AFFINE),
}

tiny_dna = st.text(alphabet="ACGT", min_size=1, max_size=5)


class TestKnownValues:
    def test_identical_global(self):
        q = encode("ACGTACGT")
        assert score_reference(q, q, SCHEMES["global-linear"]) == 16

    def test_single_mismatch_global(self):
        q, s = encode("ACGTACGT"), encode("ACGTTCGT")
        assert score_reference(q, s, SCHEMES["global-linear"]) == 2 * 7 - 1

    def test_single_gap_global_linear(self):
        q, s = encode("ACGTACGT"), encode("ACGTCGT")
        assert score_reference(q, s, SCHEMES["global-linear"]) == 2 * 7 - 1

    def test_gap_run_affine_vs_linear(self):
        # Deleting 3 chars: linear pays 3*-1, affine pays -2-3*-1 = -5.
        q, s = encode("AAACCCGGG"), encode("AAAGGG")
        assert score_reference(q, s, SCHEMES["global-linear"]) == 12 - 3
        assert score_reference(q, s, SCHEMES["global-affine"]) == 12 - 5

    def test_local_ignores_bad_flanks(self):
        q = encode("TTTTACGTACGTTTTT")
        s = encode("GGGGACGTACGGGGGG")
        # Common segment ACGTACG of length 7.
        assert score_reference(q, s, SCHEMES["local-linear"]) == 14

    def test_local_disjoint_alphabet_is_zero(self):
        assert score_reference(encode("AAAA"), encode("TTTT"), SCHEMES["local-linear"]) == 0

    def test_semiglobal_free_end_gaps(self):
        # s is a read inside q: semi-global should not pay for the overhang.
        q = encode("TTTTACGTACGTTTTT")
        s = encode("ACGTACGT")
        assert score_reference(q, s, SCHEMES["semiglobal-linear"]) == 16

    def test_global_pays_end_gaps(self):
        q = encode("TTTTACGTACGTTTTT")
        s = encode("ACGTACGT")
        assert score_reference(q, s, SCHEMES["global-linear"]) < 16

    def test_single_char_pair(self):
        assert score_reference(encode("A"), encode("A"), SCHEMES["global-linear"]) == 2
        assert score_reference(encode("A"), encode("C"), SCHEMES["global-linear"]) == -1

    def test_matrix_substitution(self):
        m = np.full((4, 4), -3)
        np.fill_diagonal(m, 5)
        m[0, 2] = m[2, 0] = 1  # transitions A<->G cheaper
        scheme = global_scheme(linear_gap_scoring(matrix_subst_scoring(m), -2))
        assert score_reference(encode("AG"), encode("GG"), scheme) == 1 + 5


class TestMatrixShape:
    def test_shapes_and_borders_linear_global(self):
        mats = dp_matrices(encode("ACG"), encode("ACGT"), SCHEMES["global-linear"])
        assert mats.H.shape == (4, 5)
        np.testing.assert_array_equal(mats.H[0, :], [0, -1, -2, -3, -4])
        np.testing.assert_array_equal(mats.H[:, 0], [0, -1, -2, -3])
        assert mats.E is None and mats.F is None

    def test_borders_affine_global(self):
        mats = dp_matrices(encode("ACG"), encode("ACG"), SCHEMES["global-affine"])
        np.testing.assert_array_equal(mats.H[0, 1:], [-3, -4, -5])
        np.testing.assert_array_equal(mats.H[1:, 0], [-3, -4, -5])

    def test_borders_local_zero(self):
        mats = dp_matrices(encode("ACG"), encode("ACG"), SCHEMES["local-linear"])
        assert mats.H[0, :].max() == 0 and mats.H[:, 0].max() == 0

    def test_best_pos_global_is_corner(self):
        mats = dp_matrices(encode("ACG"), encode("ACGT"), SCHEMES["global-linear"])
        assert mats.best_pos == (3, 4)

    def test_best_pos_semiglobal_on_border(self):
        mats = dp_matrices(encode("ACGTT"), encode("AACGT"), SCHEMES["semiglobal-linear"])
        i, j = mats.best_pos
        assert i == 5 or j == 5


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestBruteForce:
    """Exact agreement with exhaustive path enumeration on tiny inputs."""

    def test_fixed_pairs(self, name):
        scheme = SCHEMES[name]
        pairs = [("A", "A"), ("AC", "CA"), ("ACG", "AG"), ("GATT", "GCAT"),
                 ("AAAA", "TTTT"), ("ACGT", "ACGT"), ("TTAA", "TA")]
        for q, s in pairs:
            assert score_reference(encode(q), encode(s), scheme) == brute_force(
                q, s, scheme
            ), (q, s, name)

    @settings(max_examples=25, deadline=None)
    @given(q=tiny_dna, s=tiny_dna)
    def test_random_pairs(self, name, q, s):
        scheme = SCHEMES[name]
        assert score_reference(encode(q), encode(s), scheme) == brute_force(q, s, scheme)


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestTraceback:
    def test_fixed_pairs_valid(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(11)
        for _ in range(20):
            q = random_dna_str(rng, int(rng.integers(1, 30)))
            s = random_dna_str(rng, int(rng.integers(1, 30)))
            res = align_reference(encode(q), encode(s), scheme)
            assert_valid_result(res, q, s, scheme)
            assert res.score == score_reference(encode(q), encode(s), scheme)

    @settings(max_examples=30, deadline=None)
    @given(q=st.text(alphabet="ACGT", min_size=1, max_size=25),
           s=st.text(alphabet="ACGT", min_size=1, max_size=25))
    def test_traceback_rescores_property(self, name, q, s):
        scheme = SCHEMES[name]
        res = align_reference(encode(q), encode(s), scheme)
        assert_valid_result(res, q, s, scheme)


class TestSymmetryProperties:
    @settings(max_examples=25, deadline=None)
    @given(q=st.text(alphabet="ACGT", min_size=1, max_size=20),
           s=st.text(alphabet="ACGT", min_size=1, max_size=20))
    def test_swap_symmetry(self, q, s):
        # Simple scoring is symmetric, so swapping inputs preserves the score.
        for scheme in SCHEMES.values():
            assert score_reference(encode(q), encode(s), scheme) == score_reference(
                encode(s), encode(q), scheme
            )

    @settings(max_examples=25, deadline=None)
    @given(s=st.text(alphabet="ACGT", min_size=1, max_size=30))
    def test_self_alignment_all_match(self, s):
        q = encode(s)
        expected = 2 * len(s)
        for name in ("global-linear", "local-linear", "semiglobal-linear"):
            assert score_reference(q, q, SCHEMES[name]) == expected

    @settings(max_examples=25, deadline=None)
    @given(q=st.text(alphabet="ACGT", min_size=1, max_size=20),
           s=st.text(alphabet="ACGT", min_size=1, max_size=20))
    def test_type_ordering(self, q, s):
        # local >= semiglobal >= global: each relaxes constraints of the next.
        for scoring in (LINEAR, AFFINE):
            g = score_reference(encode(q), encode(s), global_scheme(scoring))
            sg = score_reference(encode(q), encode(s), semiglobal_scheme(scoring))
            lo = score_reference(encode(q), encode(s), local_scheme(scoring))
            assert lo >= sg >= g

    @settings(max_examples=20, deadline=None)
    @given(q=st.text(alphabet="ACGT", min_size=1, max_size=15),
           s=st.text(alphabet="ACGT", min_size=1, max_size=15))
    def test_affine_zero_open_equals_linear(self, q, s):
        lin = linear_gap_scoring(SUB, -1)
        aff = affine_gap_scoring(SUB, 0, -1)
        for mk in (global_scheme, local_scheme, semiglobal_scheme):
            assert score_reference(encode(q), encode(s), mk(lin)) == score_reference(
                encode(q), encode(s), mk(aff)
            )

    @settings(max_examples=25, deadline=None)
    @given(s=st.text(alphabet="ACGT", min_size=2, max_size=20),
           k=st.integers(min_value=1, max_value=5))
    def test_local_substring(self, s, k):
        # A substring aligns locally with score 2*len(substring).
        k = min(k, len(s))
        sub = s[:k]
        assert score_reference(
            encode(sub), encode(s), SCHEMES["local-linear"]
        ) == 2 * k


class TestAlignmentResultApi:
    def test_cigar_and_identity(self):
        res = align_reference(
            encode("ACGTACGT"), encode("ACGACGT"), SCHEMES["global-linear"]
        )
        assert res.cigar().count("I") == 1
        assert "M" in res.cigar()
        assert 0 < res.identity() <= 1

    def test_pretty_contains_score(self):
        res = align_reference(encode("ACGT"), encode("ACGT"), SCHEMES["global-linear"])
        assert "score=8" in res.pretty()

    def test_len(self):
        res = align_reference(encode("ACGT"), encode("ACGT"), SCHEMES["global-linear"])
        assert len(res) == 4
