"""Tests for structured logging (repro.obs.log).

Covers the operational-logging contract:

* record shape — JSON-lines output, automatic trace/span correlation
  from the ambient tracer, field merging, ``default=str`` resilience;
* the sink pipeline — level gating (and its one-compare disabled path),
  per-``(component, level)`` token-bucket rate limiting with suppressed
  counts carried onto the next passing record, the bounded ring, and
  stream writes that survive a torn-down stream;
* process-global wiring — cached per-component loggers all see an
  in-place :func:`configure_logging`.
"""

import io
import json

import pytest

from repro.obs import (
    LEVELS,
    LogRecord,
    LogSink,
    Logger,
    TokenBucket,
    Tracer,
    configure_logging,
    get_log_sink,
    get_logger,
)
from repro.util.checks import ValidationError


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def sink():
    return LogSink(min_level="debug", rate=1000.0, burst=1000.0)


# -- token bucket ------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(2.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1e6)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1, burst=-1)


# -- record shape ------------------------------------------------------------
class TestLogRecord:
    def test_json_line_shape(self, sink):
        log = Logger("engine", sink)
        assert log.info("batch done", batch=7, cause="size")
        (rec,) = sink.records()
        doc = json.loads(rec.to_json())
        assert doc["level"] == "info"
        assert doc["component"] == "engine"
        assert doc["message"] == "batch done"
        assert doc["batch"] == 7 and doc["cause"] == "size"
        assert doc["pid"] > 0 and doc["tid"] > 0
        assert "trace_id" not in doc  # no ambient span -> no correlation keys

    def test_trace_correlation_from_ambient_span(self, sink):
        tracer = Tracer(capacity=16, enabled=True)
        log = Logger("search", sink)
        import repro.obs.log as log_mod

        orig = log_mod.get_tracer
        log_mod.get_tracer = lambda: tracer
        try:
            with tracer.span("outer") as sp:
                log.info("inside")
            log.info("outside")
        finally:
            log_mod.get_tracer = orig
        inside, outside = sink.records()
        assert inside.trace_id == sp.context.trace_id
        assert inside.span_id == sp.context.span_id
        assert outside.trace_id is None

    def test_unserializable_field_falls_back_to_str(self, sink):
        log = Logger("x", sink)
        log.info("odd", obj=object())
        (rec,) = sink.records()
        assert "object object" in json.loads(rec.to_json())["obj"]

    def test_suppressed_key_only_when_nonzero(self):
        rec = LogRecord(ts=1.0, level="info", component="c", message="m")
        assert "suppressed" not in rec.as_dict()
        rec.suppressed = 3
        assert rec.as_dict()["suppressed"] == 3


# -- sink pipeline -----------------------------------------------------------
class TestLogSink:
    def test_level_gate(self, sink):
        sink.min_level = "warning"
        log = Logger("c", sink)
        assert not log.debug("no")
        assert not log.info("no")
        assert log.warning("yes")
        assert log.error("yes")
        assert [r.level for r in sink.records()] == ["warning", "error"]
        assert log.enabled_for("error") and not log.enabled_for("info")

    def test_unknown_level_rejected(self, sink):
        with pytest.raises(ValidationError):
            Logger("c", sink).log("fatal", "boom")
        with pytest.raises(ValidationError):
            sink.min_level = "verbose"

    def test_ring_is_bounded_and_counts_evictions(self):
        sink = LogSink(ring_capacity=4, min_level="debug", rate=1e9, burst=1e9)
        log = Logger("c", sink)
        for i in range(10):
            log.info(f"m{i}")
        assert [r.message for r in sink.records()] == ["m6", "m7", "m8", "m9"]
        assert sink.dropped == 6

    def test_rate_limit_suppresses_and_carries_count(self):
        clock = FakeClock()
        sink = LogSink(min_level="debug", rate=1.0, burst=2.0, clock=clock)
        log = Logger("hot", sink)
        assert log.info("a") and log.info("b")
        assert not log.info("c") and not log.info("d")  # bucket dry
        clock.advance(5.0)
        assert log.info("e")
        records = sink.records()
        assert [r.message for r in records] == ["a", "b", "e"]
        assert records[-1].suppressed == 2  # c and d, reported not silent
        assert sink.suppressed() == {("hot", "info"): 2}

    def test_rate_limit_is_per_component_and_level(self):
        clock = FakeClock()
        sink = LogSink(min_level="debug", rate=1.0, burst=1.0, clock=clock)
        hot, cold = Logger("hot", sink), Logger("cold", sink)
        assert hot.info("a")
        assert not hot.info("b")
        assert hot.error("still-through")  # different level, own bucket
        assert cold.info("own-bucket")

    def test_stream_write_and_torn_stream_survival(self, sink):
        stream = io.StringIO()
        sink.configure(stream=stream)
        log = Logger("c", sink)
        log.info("hello")
        assert json.loads(stream.getvalue())["message"] == "hello"
        stream.close()  # further writes raise ValueError inside the sink
        assert log.info("after-close")  # swallowed, record still ringed
        assert [r.message for r in sink.records()] == ["hello", "after-close"]

    def test_records_tail_and_level_filter(self, sink):
        log = Logger("c", sink)
        for i in range(5):
            log.info(f"i{i}")
        log.error("boom")
        assert [r.message for r in sink.records(n=2)] == ["i4", "boom"]
        assert [r.message for r in sink.records(min_level="error")] == ["boom"]

    def test_clear_resets_everything(self, sink):
        log = Logger("c", sink)
        log.info("x")
        sink.clear()
        assert sink.records() == [] and sink.dropped == 0
        assert sink.suppressed() == {}


# -- global wiring -----------------------------------------------------------
class TestGlobalWiring:
    def test_cached_loggers_share_the_default_sink(self):
        assert get_logger("same") is get_logger("same")
        assert get_logger("same").sink is get_log_sink()

    def test_configure_logging_applies_in_place(self):
        sink = get_log_sink()
        before = sink.min_level
        log = get_logger("cfg-test")  # cached before the reconfigure
        try:
            configure_logging(min_level="error")
            assert not log.info("gated")
            assert log.error("through")
        finally:
            configure_logging(min_level=before)
            sink.clear()

    def test_levels_table(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
