"""Property-based soundness of the partial evaluator.

For random expression trees and random variable assignments, folding must
never change the value; for random straight-line kernels, the specialized
compiled function must agree with the unoptimized one.  This is the
fuzz-level guarantee behind every specialized alignment kernel.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stage import (
    BinOp,
    Cmp,
    Const,
    KernelBuilder,
    Max,
    Min,
    Select,
    Var,
    build_kernel,
    fold_expr,
)

VAR_NAMES = ("x", "y", "z")


def exprs(depth=3):
    base = st.one_of(
        st.integers(-50, 50).map(Const),
        st.sampled_from(VAR_NAMES).map(Var),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: BinOp(*t)
        ),
        st.tuples(sub, sub).map(lambda t: Max(t[0], t[1])),
        st.tuples(sub, sub).map(lambda t: Min(t[0], t[1])),
        st.tuples(st.sampled_from(["<", "<=", "==", ">="]), sub, sub).map(
            lambda t: Select(Cmp(*t), Const(1), Const(0))
        ),
    )


def _eval(e, env):
    """Direct interpreter — the semantics folding must preserve."""
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Var):
        return env[e.name]
    if isinstance(e, BinOp):
        a, b = _eval(e.a, env), _eval(e.b, env)
        return {"+": a + b, "-": a - b, "*": a * b}[e.op]
    if isinstance(e, Max):
        return max(_eval(e.a, env), _eval(e.b, env))
    if isinstance(e, Min):
        return min(_eval(e.a, env), _eval(e.b, env))
    if isinstance(e, Cmp):
        a, b = _eval(e.a, env), _eval(e.b, env)
        return {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }[e.op]
    if isinstance(e, Select):
        return _eval(e.a, env) if _eval(e.cond, env) else _eval(e.b, env)
    raise TypeError(e)


class TestFoldSoundness:
    @settings(max_examples=200, deadline=None)
    @given(
        e=exprs(),
        vals=st.tuples(*(st.integers(-30, 30) for _ in VAR_NAMES)),
    )
    def test_fold_preserves_semantics(self, e, vals):
        env = dict(zip(VAR_NAMES, vals))
        assert _eval(fold_expr(e), env) == _eval(e, env)

    @settings(max_examples=60, deadline=None)
    @given(
        e=exprs(),
        vals=st.tuples(*(st.integers(-30, 30) for _ in VAR_NAMES)),
        dialect=st.sampled_from(["scalar", "vector"]),
    )
    def test_compiled_matches_interpreter(self, e, vals, dialect):
        env = dict(zip(VAR_NAMES, vals))

        def make(optimize):
            b = KernelBuilder("k", list(VAR_NAMES))
            b.ret(e)
            return build_kernel(b, dialect=dialect, optimize=optimize)

        expect = _eval(e, env)
        got_opt = make(True)(*vals)
        got_raw = make(False)(*vals)
        assert bool(got_opt == expect) and bool(got_raw == expect)

    @settings(max_examples=40, deadline=None)
    @given(
        e=exprs(),
        cols=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_vector_dialect_elementwise(self, e, cols, seed):
        # The vector dialect must equal the scalar one applied per lane.
        rng = np.random.default_rng(seed)
        arrays = {n: rng.integers(-20, 20, cols) for n in VAR_NAMES}
        b = KernelBuilder("k", list(VAR_NAMES))
        b.ret(e)
        kv = build_kernel(b, dialect="vector")
        out = np.asarray(kv(*(arrays[n] for n in VAR_NAMES)))
        for lane in range(cols):
            env = {n: int(arrays[n][lane]) for n in VAR_NAMES}
            val = _eval(e, env)
            got = out[lane] if out.ndim else out[()]
            assert bool(got == val)
