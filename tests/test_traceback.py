"""Tests for linear-space traceback (repro.core.traceback / blockdp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blockdp import fill_block, sweep_best, sweep_last_rows
from repro.core.recurrence import align_reference, dp_matrices, score_reference
from repro.core.scoring import (
    affine_gap_scoring,
    global_scheme,
    linear_gap_scoring,
    local_scheme,
    rescore_alignment,
    semiglobal_scheme,
    simple_subst_scoring,
)
from repro.core.traceback import align_block, align_linear_space
from repro.util.encoding import encode

from helpers import assert_valid_result, random_dna_str

SUB = simple_subst_scoring(2, -1)
LINEAR = linear_gap_scoring(SUB, -1)
AFFINE = affine_gap_scoring(SUB, -2, -1)

SCHEMES = {
    "global-linear": global_scheme(LINEAR),
    "global-affine": global_scheme(AFFINE),
    "local-linear": local_scheme(LINEAR),
    "local-affine": local_scheme(AFFINE),
    "semiglobal-linear": semiglobal_scheme(LINEAR),
    "semiglobal-affine": semiglobal_scheme(AFFINE),
}

dna = st.text(alphabet="ACGT", min_size=1, max_size=50)


class TestFillBlock:
    @pytest.mark.parametrize("scoring", [LINEAR, AFFINE], ids=["linear", "affine"])
    def test_matches_reference_global(self, scoring):
        scheme = global_scheme(scoring)
        rng = np.random.default_rng(1)
        for _ in range(10):
            n, m = rng.integers(1, 30, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            H, E, F = fill_block(q, s, scoring)
            ref = dp_matrices(q, s, scheme)
            np.testing.assert_array_equal(H, ref.H)
            if scoring.is_affine:
                np.testing.assert_array_equal(E, ref.E)
                # F is stored in scan form: scores agree where F wins into H.

    def test_top_open_discount(self):
        # With a pre-opened vertical gap, an initial deletion costs only
        # the extension.
        q, s = encode("AA"), encode("A")
        H, E, F = fill_block(q, s, AFFINE.gaps and AFFINE, top_open=True)
        # H(1,0) = ge (not go+ge)
        assert H[1, 0] == -1
        H2, *_ = fill_block(q, s, AFFINE, top_open=False)
        assert H2[1, 0] == -3

    def test_top_open_linear_rejected(self):
        with pytest.raises(ValueError):
            fill_block(encode("A"), encode("A"), LINEAR, top_open=True)


class TestSweeps:
    def test_last_row_equals_matrix_row(self):
        rng = np.random.default_rng(5)
        for scoring in (LINEAR, AFFINE):
            n, m = 25, 31
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            H_last, E_last = sweep_last_rows(q, s, scoring)
            H, E, _F = fill_block(q, s, scoring)
            np.testing.assert_array_equal(H_last, H[n])
            if scoring.is_affine:
                np.testing.assert_array_equal(E_last, E[n])

    @pytest.mark.parametrize("name", ["local-linear", "local-affine"])
    def test_sweep_best_finds_local_optimum(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(13)
        for _ in range(10):
            n, m = rng.integers(1, 40, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            best, (i, j) = sweep_best(q, s, scheme, zero_init=True, track="all")
            ref = dp_matrices(q, s, scheme)
            assert best == ref.best_score
            assert ref.H[i, j] == best  # position attains the optimum

    @pytest.mark.parametrize("name", ["semiglobal-linear", "semiglobal-affine"])
    def test_sweep_best_semiglobal_border(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(17)
        for _ in range(10):
            n, m = rng.integers(1, 40, 2)
            q = rng.integers(0, 4, n).astype(np.uint8)
            s = rng.integers(0, 4, m).astype(np.uint8)
            best, (i, j) = sweep_best(q, s, scheme, zero_init=True, track="border")
            ref = dp_matrices(q, s, scheme)
            assert best == ref.best_score
            assert i == n or j == m


@pytest.mark.parametrize("name", sorted(SCHEMES))
class TestAlignLinearSpace:
    def test_score_and_rescore(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(hash(name) % 2**32)
        for _ in range(15):
            q = random_dna_str(rng, int(rng.integers(1, 80)))
            s = random_dna_str(rng, int(rng.integers(1, 80)))
            res = align_linear_space(encode(q), encode(s), scheme, cutoff=64)
            assert res.score == score_reference(encode(q), encode(s), scheme)
            assert_valid_result(res, q, s, scheme)

    def test_matches_block_mode(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(4242)
        q = random_dna_str(rng, 70)
        s = random_dna_str(rng, 65)
        deep = align_linear_space(encode(q), encode(s), scheme, cutoff=16)
        block = align_block(encode(q), encode(s), scheme)
        assert deep.score == block.score
        # Both must rescore to the same optimum (strings may differ on ties).
        assert rescore_alignment(deep.query_aligned, deep.subject_aligned, scheme.scoring) == rescore_alignment(
            block.query_aligned, block.subject_aligned, scheme.scoring
        )

    @settings(max_examples=20, deadline=None)
    @given(q=dna, s=dna, cutoff=st.sampled_from([8, 32, 256]))
    def test_property_any_cutoff(self, name, q, s, cutoff):
        scheme = SCHEMES[name]
        res = align_linear_space(encode(q), encode(s), scheme, cutoff=cutoff)
        assert res.score == score_reference(encode(q), encode(s), scheme)
        assert_valid_result(res, q, s, scheme)


class TestAffineGapRuns:
    def test_long_gap_crossing_midline(self):
        # A 30-char deletion spanning the Hirschberg split must be charged
        # one gap-open, not two (Myers–Miller E-join).
        scheme = SCHEMES["global-affine"]
        core = "ACGTACGTACGTACGTACGTACGTACGTA"
        q = encode(core[:14] + "G" * 30 + core[14:])
        s = encode(core)
        res = align_linear_space(q, s, scheme, cutoff=8)
        assert res.score == score_reference(q, s, scheme)
        assert "-" * 30 in res.subject_aligned
        assert rescore_alignment(res.query_aligned, res.subject_aligned, scheme.scoring) == res.score

    def test_adversarial_gap_positions(self):
        scheme = SCHEMES["global-affine"]
        rng = np.random.default_rng(77)
        for _ in range(10):
            base = random_dna_str(rng, 60)
            cut = int(rng.integers(5, 55))
            gap_len = int(rng.integers(5, 25))
            ins = random_dna_str(rng, gap_len)
            q = encode(base[:cut] + ins + base[cut:])
            s = encode(base)
            res = align_linear_space(q, s, scheme, cutoff=8)
            assert res.score == score_reference(q, s, scheme)


class TestLocalEdgeCases:
    def test_no_positive_alignment_is_empty(self):
        res = align_linear_space(encode("AAAA"), encode("TTTT"), SCHEMES["local-linear"])
        assert res.score == 0
        assert res.query_aligned == "" and res.subject_aligned == ""

    def test_local_segment_bounds(self):
        q = "TTTT" + "ACGTACGT" + "TTTT"
        s = "GGGG" + "ACGTACGT" + "GGGG"
        res = align_linear_space(encode(q), encode(s), SCHEMES["local-linear"])
        assert res.score == 16
        assert q[res.query_start : res.query_end] == "ACGTACGT"
        assert s[res.subject_start : res.subject_end] == "ACGTACGT"

    def test_semiglobal_read_in_reference(self):
        ref = "TTTTACGTACGTTTTT"
        read = "ACGTACGT"
        res = align_linear_space(encode(read), encode(ref), SCHEMES["semiglobal-linear"])
        assert res.score == 16
        assert res.query_start == 0 and res.query_end == len(read)
        assert ref[res.subject_start : res.subject_end] == read


class TestLargerInputs:
    @pytest.mark.parametrize("name", ["global-linear", "global-affine"])
    def test_medium_global(self, name):
        scheme = SCHEMES[name]
        rng = np.random.default_rng(123)
        base = rng.integers(0, 4, 400).astype(np.uint8)
        q = base.copy()
        # mutate ~5%
        pos = rng.choice(400, 20, replace=False)
        q[pos] = (q[pos] + 1 + rng.integers(0, 3, 20)) % 4
        res = align_linear_space(q, base, scheme, cutoff=256)
        assert rescore_alignment(res.query_aligned, res.subject_aligned, scheme.scoring) == res.score
        from repro.core.kernels import score_rowscan

        assert res.score == score_rowscan(q, base, scheme)
