"""Tests for codegen, compilation, generators, and staged-function filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stage import (
    CallFn,
    Const,
    For,
    KernelBuilder,
    ScanMax,
    Shift,
    Var,
    build_kernel,
    combine,
    contains_node,
    dyn,
    emit_function,
    is_static,
    parallel,
    range_loop,
    select,
    smax,
    staged,
    static_value,
    tile,
    unroll,
    vectorize,
    KernelCache,
)
from repro.util.checks import StagingError


def _build_axpy(dialect):
    b = KernelBuilder("axpy", ["y", "x", "n", "a"])
    with b.loop("i", 0, b.var("n")) as i:
        b.store("y", (i,), b.load("x", (i,)) * b.var("a") + b.load("y", (i,)))
    return build_kernel(b, dialect=dialect)


class TestCompile:
    @pytest.mark.parametrize("dialect", ["scalar", "vector"])
    def test_axpy(self, dialect):
        k = _build_axpy(dialect)
        x = np.arange(5, dtype=np.int64)
        y = np.ones(5, dtype=np.int64)
        k(y, x, 5, 10)
        np.testing.assert_array_equal(y, x * 10 + 1)

    def test_source_is_inspectable(self):
        k = _build_axpy("scalar")
        assert "def axpy(" in k.source
        assert "for i in range(0, n):" in k.source

    def test_scalar_max_emitted_inline(self):
        b = KernelBuilder("m2", ["a", "b"])
        b.ret(smax(b.var("a"), b.var("b")))
        k = build_kernel(b, dialect="scalar")
        assert k(3, 7) == 7 and k(9, 2) == 9
        assert "np.maximum" not in k.source

    def test_vector_max_uses_numpy(self):
        b = KernelBuilder("m2", ["a", "b"])
        b.ret(smax(b.var("a"), b.var("b")))
        k = build_kernel(b, dialect="vector")
        np.testing.assert_array_equal(
            k(np.array([1, 5]), np.array([4, 2])), np.array([4, 5])
        )
        assert "np.maximum" in k.source

    def test_select_dialects(self):
        b = KernelBuilder("sel", ["c", "a", "b"])
        b.ret(select(b.var("c"), b.var("a"), b.var("b")))
        ks = build_kernel(b, dialect="scalar")
        assert ks(True, 1, 2) == 1 and ks(False, 1, 2) == 2

        b2 = KernelBuilder("sel", ["c", "a", "b"])
        b2.ret(select(b2.var("c"), b2.var("a"), b2.var("b")))
        kv = build_kernel(b2, dialect="vector")
        np.testing.assert_array_equal(
            kv(np.array([True, False]), np.array([1, 1]), np.array([2, 2])),
            np.array([1, 2]),
        )

    def test_scanmax_vector_only(self):
        b = KernelBuilder("sm", ["x"])
        b.ret(ScanMax(b.var("x")))
        k = build_kernel(b, dialect="vector")
        np.testing.assert_array_equal(
            k(np.array([1, 3, 2, 5, 4])), np.array([1, 3, 3, 5, 5])
        )
        b2 = KernelBuilder("sm", ["x"])
        b2.ret(ScanMax(b2.var("x")))
        with pytest.raises(StagingError, match="vector"):
            build_kernel(b2, dialect="scalar")

    def test_shift(self):
        b = KernelBuilder("sh", ["x"])
        b.ret(Shift(b.var("x"), 2, Const(-9)))
        k = build_kernel(b, dialect="vector")
        np.testing.assert_array_equal(
            k(np.array([1, 2, 3, 4])), np.array([-9, -9, 1, 2])
        )

    def test_shift_zero_is_identity(self):
        b = KernelBuilder("sh0", ["x"])
        b.ret(Shift(b.var("x"), 0, Const(0)))
        k = build_kernel(b, dialect="vector")
        x = np.array([5, 6])
        np.testing.assert_array_equal(k(x), x)

    def test_unoptimized_kernel_still_correct(self):
        b = KernelBuilder("k", ["x"])
        b.ret(smax(b.var("x") + 0, Const(-(2**30))) * 1)
        k_opt = build_kernel(b, dialect="scalar")
        b2 = KernelBuilder("k", ["x"])
        b2.ret(smax(b2.var("x") + 0, Const(-(2**30))) * 1)
        k_raw = build_kernel(b2, dialect="scalar", optimize=False)
        assert k_opt(42) == k_raw(42) == 42
        assert len(k_opt.source) < len(k_raw.source)

    def test_extra_env(self):
        b = KernelBuilder("k", ["x"])
        b.ret(CallFn("helper", (b.var("x"),)))
        k = build_kernel(b, extra_env={"helper": lambda v: v * 3}, dialect="scalar")
        assert k(4) == 12


class TestGenerators:
    def test_range_loop(self):
        b = KernelBuilder("k", ["A", "n"])
        range_loop(b, 0, b.var("n"), lambda i: b.store("A", (i,), i))
        k = build_kernel(b, dialect="scalar")
        a = np.zeros(6, dtype=np.int64)
        k(a, 6)
        np.testing.assert_array_equal(a, np.arange(6))

    def test_unroll_static(self):
        b = KernelBuilder("k", ["A"])
        unroll(b, 0, 4, lambda i: b.store("A", (i,), i * i))
        fn = b.build()
        assert not contains_node(fn, For)  # fully unrolled at trace time

    def test_unroll_dynamic_bounds_rejected(self):
        b = KernelBuilder("k", ["A", "n"])
        with pytest.raises(StagingError, match="static"):
            unroll(b, 0, b.var("n"), lambda i: None)

    def test_vectorize_marks_loop(self):
        b = KernelBuilder("k", ["A", "n"])
        vec = vectorize(8)
        vec(b, 0, b.var("n"), lambda i: b.store("A", (i,), i))
        fn = b.build()
        assert fn.body[0].kind == "vector"
        assert vec.simd_width == 8

    def test_parallel_marks_loop(self):
        b = KernelBuilder("k", ["A", "n"])
        par = parallel(4)
        par(b, 0, b.var("n"), lambda i: b.store("A", (i,), i))
        assert b.build().body[0].kind == "parallel"
        assert par.num_threads == 4

    def test_combine_2d(self):
        b = KernelBuilder("k", ["A", "h", "w"])
        loop2d = combine(range_loop, range_loop)
        loop2d(
            b,
            (0, b.var("h")),
            (0, b.var("w")),
            lambda y, x: b.store("A", (y, x), y * 10 + x),
        )
        k = build_kernel(b, dialect="scalar")
        a = np.zeros((3, 4), dtype=np.int64)
        k(a, 3, 4)
        expect = np.arange(3)[:, None] * 10 + np.arange(4)[None, :]
        np.testing.assert_array_equal(a, expect)

    def test_combine_unroll_inner(self):
        b = KernelBuilder("k", ["A", "h"])
        loop2d = combine(range_loop, unroll)
        loop2d(b, (0, b.var("h")), (0, 3), lambda y, x: b.store("A", (y, x), y + x))
        fn = b.build()
        outer = fn.body[0]
        assert isinstance(outer, For)
        from repro.stage.ir import Store

        assert sum(isinstance(s, Store) for s in outer.body) == 3

    @pytest.mark.parametrize("th,tw", [(2, 3), (4, 4), (1, 7), (5, 2)])
    def test_tile_covers_domain_exactly_once(self, th, tw):
        b = KernelBuilder("k", ["A", "h", "w"])
        loop2d = tile(th, tw, range_loop, range_loop)
        loop2d(
            b,
            (0, b.var("h")),
            (0, b.var("w")),
            lambda y, x: b.store("A", (y, x), b.load("A", (y, x)) + 1),
        )
        k = build_kernel(b, dialect="scalar")
        a = np.zeros((7, 9), dtype=np.int64)
        k(a, 7, 9)
        np.testing.assert_array_equal(a, np.ones((7, 9), dtype=np.int64))

    def test_tile_rejects_bad_sizes(self):
        with pytest.raises(StagingError):
            tile(0, 4, range_loop, range_loop)

    @settings(max_examples=20, deadline=None)
    @given(h=st.integers(1, 12), w=st.integers(1, 12), th=st.integers(1, 5), tw=st.integers(1, 5))
    def test_tile_property(self, h, w, th, tw):
        b = KernelBuilder("k", ["A", "h", "w"])
        loop2d = tile(th, tw, range_loop, range_loop)
        loop2d(
            b,
            (0, b.var("h")),
            (0, b.var("w")),
            lambda y, x: b.store("A", (y, x), b.load("A", (y, x)) + 1),
        )
        k = build_kernel(b, dialect="scalar")
        a = np.zeros((h, w), dtype=np.int64)
        k(a, h, w)
        assert a.sum() == h * w and a.max() == 1


@staged(filter=lambda x, n: is_static(n))
def pow_(b, x, n):
    """x**n — specializes to a multiply chain for static n (paper §II-B)."""
    if is_static(n):
        v = static_value(n)
        if v == 0:
            return Const(1)
        return pow_.inline(b, x, v - 1) * x
    acc = b.mutable(1)
    with b.loop(b.fresh("k"), 0, n) as _k:
        acc.set(acc.value * x)
    return acc.value


class TestStagedFilters:
    def test_static_n_specializes(self):
        b = KernelBuilder("p5", ["x"])
        b.ret(pow_(b, b.var("x"), 5))
        k = build_kernel(b, dialect="scalar")
        assert k(3) == 243
        assert "for" not in k.source  # loop-less multiply chain

    def test_all_static_folds_to_constant(self):
        b = KernelBuilder("p", [])
        b.ret(pow_(b, Const(3), 5))
        k = build_kernel(b, dialect="scalar")
        assert "243" in k.source
        assert k() == 243

    def test_dyn_stays_residual(self):
        # pow(x, $5): the paper's polyvariance example.
        b = KernelBuilder("pd", ["x"])
        b.ret(pow_(b, b.var("x"), dyn(5)))
        k = build_kernel(b, dialect="scalar")
        assert k(3) == 243
        assert "for" in k.source  # residual loop survives

    def test_runtime_n_residual_helper(self):
        b = KernelBuilder("pn", ["x", "n"])
        b.ret(pow_(b, b.var("x"), b.var("n")))
        k = build_kernel(b, dialect="scalar")
        assert k(2, 10) == 1024
        assert k(5, 0) == 1

    def test_residual_helper_emitted_once(self):
        b = KernelBuilder("pn2", ["x", "n"])
        first = pow_(b, b.var("x"), b.var("n"))
        second = pow_(b, b.var("x") + 1, b.var("n"))
        b.ret(first + second)
        k = build_kernel(b, dialect="scalar")
        assert k.source.count("def _pow_2(") == 1
        assert k(2, 3) == 8 + 27

    @given(x=st.integers(-9, 9), n=st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_pow_matches_python(self, x, n):
        b = KernelBuilder("pp", ["x"])
        b.ret(pow_(b, b.var("x"), n))
        k = build_kernel(b, dialect="scalar")
        assert k(x) == x**n


class TestKernelCache:
    def test_hit_and_miss_counts(self):
        cache = KernelCache()
        calls = []

        def thunk():
            calls.append(1)
            return _build_axpy("scalar")

        k1 = cache.get_or_build(("axpy", "scalar"), thunk)
        k2 = cache.get_or_build(("axpy", "scalar"), thunk)
        assert k1 is k2
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_clear(self):
        cache = KernelCache()
        cache.get_or_build("k", lambda: _build_axpy("scalar"))
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_builders_count_one_miss(self):
        """Racing builders: only the thread whose kernel lands counts a miss."""
        import threading

        cache = KernelCache()
        barrier = threading.Barrier(4)
        built = []

        def thunk():
            built.append(1)
            return _build_axpy("scalar")

        def worker():
            barrier.wait()  # all four miss the first lookup together
            cache.get_or_build(("axpy", "raced"), thunk)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # However the race resolves, exactly one kernel is installed — one
        # miss; every other call (redundant build or first-lookup hit) is
        # served from the cache and counts a hit.
        assert 1 <= len(built) <= 4
        assert cache.misses == 1
        assert cache.hits == 3
        assert len(cache) == 1


class TestEmission:
    def test_emit_function_standalone(self):
        b = KernelBuilder("f", ["x"])
        b.ret(b.var("x") + 1)
        src = emit_function(b.build(), dialect="scalar")
        assert src.startswith("def f(x):")

    def test_docstring_emitted(self):
        b = KernelBuilder("f", ["x"], docstring="adds one")
        b.ret(b.var("x") + 1)
        src = emit_function(b.build(), dialect="scalar")
        assert '"""adds one"""' in src
