"""Tests for the observability subsystem (repro.obs + instrumentation).

Covers the PR's acceptance checklist:

* tracer mechanics — parent links via contextvars, explicit carriers,
  the ring bound, the zero-allocation disabled path, retro-recording;
* metrics mechanics — the three instrument kinds, labeled series,
  registration conflicts, snapshot/diff/merge composability, and exact
  counts under a multi-thread hammer;
* exports — Chrome ``trace_event`` structure (validated by the same
  gate CI uses), Prometheus text, ``perf.report.snapshot``;
* cross-process propagation — a traced sharded search yields ONE
  stitched trace with worker-process spans, and the stitching survives a
  worker being killed and respawned between traced calls.
"""

import json
import threading

import pytest

from repro.obs import (
    ClockOffset,
    MetricsRegistry,
    Span,
    SpanContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.perf.report import snapshot as perf_snapshot
from repro.perf.report import trace_tree
from repro.search import SearchConfig, search
from repro.shard import ShardPlan, ShardWorkerPool
from repro.util.checks import ValidationError

from helpers import hit_keys, planted_instance


@pytest.fixture
def tracer():
    """A private enabled tracer (no global state touched)."""
    return Tracer(capacity=64, enabled=True)


@pytest.fixture
def global_obs():
    """Enable the global tracer for a test; restore/clear afterwards."""
    t = enable_tracing(capacity=16384)
    t.clear()
    yield t
    disable_tracing()
    t.clear()


# -- tracer mechanics --------------------------------------------------------
class TestTracer:
    def test_disabled_path_is_shared_noop(self):
        t = Tracer(enabled=False)
        a = t.span("a", anything=1)
        b = t.span("b")
        assert a is b  # one shared object: no allocation when disabled
        with a as sp:
            assert sp.context is None
            sp.set(x=1)  # surface matches the live span
        sp.finish()
        assert t.spans() == []
        assert t.record_span("c", 0.5) is None

    def test_nested_spans_link_to_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["root"].parent_id is None
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["grandchild"].parent_id == spans["child"].span_id
        assert len({s.trace_id for s in spans.values()}) == 1
        assert root.context.trace_id == child.context.trace_id

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["a"].parent_id == spans["b"].parent_id == spans["root"].span_id

    def test_explicit_parent_overrides_ambient(self, tracer):
        with tracer.span("root") as root:
            foreign = SpanContext("t-x", "s-x")
            with tracer.span("adopted", parent=foreign):
                pass
            with tracer.span("carrier-adopted", parent=foreign.to_carrier()):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["adopted"].trace_id == "t-x"
        assert spans["adopted"].parent_id == "s-x"
        assert spans["carrier-adopted"].parent_id == "s-x"
        assert spans["root"].trace_id != "t-x"
        assert root.context is not None

    def test_carrier_roundtrip_through_activate(self, tracer):
        with tracer.span("root"):
            ctx = tracer.current()
            carrier = ctx.to_carrier()
        # Far side of a queue/thread hop: no ambient context here.
        assert tracer.current() is None
        with tracer.activate(carrier):
            with tracer.span("remote"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["remote"].trace_id == spans["root"].trace_id
        assert spans["remote"].parent_id == spans["root"].span_id

    def test_activate_none_is_a_noop(self, tracer):
        with tracer.activate(None):
            assert tracer.current() is None
        with tracer.activate({}):
            assert tracer.current() is None

    def test_ring_bound_drops_oldest(self):
        t = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        spans = t.spans()
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]
        assert t.dropped == 6
        t.clear()
        assert t.dropped == 0

    def test_record_span_retro_records(self, tracer):
        with tracer.span("root"):
            got = tracer.record_span("timed", 0.25, batch=3)
        spans = {s.name: s for s in tracer.spans()}
        assert got is spans["timed"]
        assert spans["timed"].parent_id == spans["root"].span_id
        assert spans["timed"].dur_us == pytest.approx(0.25e6)
        assert spans["timed"].attrs == {"batch": 3}
        # start defaults to now - duration: it ends by roughly "now".
        end_us = spans["timed"].start_us + spans["timed"].dur_us
        assert abs(end_us - spans["root"].start_us) < 5e6

    def test_exception_stamps_error_attr(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_drain_empties_buffer(self, tracer):
        with tracer.span("a"):
            pass
        assert [s.name for s in tracer.drain()] == ["a"]
        assert tracer.spans() == []

    def test_span_tuple_roundtrip(self, tracer):
        with tracer.span("x", k=1):
            pass
        (span,) = tracer.spans()
        assert Span.from_tuple(span.to_tuple()) == span


class TestClockOffset:
    def test_roundtrip_estimate(self):
        # Remote clock 2s ahead; symmetric 100ms round trip.
        off = ClockOffset.from_roundtrip(10.0, 10.1, 12.05)
        assert off.offset_us == pytest.approx(2.0e6)
        assert off.rtt_us == pytest.approx(0.1e6)
        assert off.to_local_us(12.05e6) == pytest.approx(10.05e6)

    def test_ingest_applies_offset(self, tracer):
        foreign = Span(
            trace_id="t", span_id="s", parent_id=None, name="w",
            start_us=5_000_000.0, pid=999, tid=1, process="shard-0",
        )
        tracer.ingest([foreign.to_tuple()], offset=ClockOffset(offset_us=1e6))
        (span,) = tracer.spans()
        assert span.start_us == pytest.approx(4_000_000.0)
        assert span.process == "shard-0"


# -- chrome export -----------------------------------------------------------
class TestChromeExport:
    def _spans(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        return tracer.spans()

    def test_export_shape_and_validation(self, tracer):
        doc = to_chrome_trace(self._spans(tracer))
        text = json.dumps(doc)  # must be JSON-serializable as-is
        assert "traceEvents" in json.loads(text)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 2
        assert {e["name"] for e in ms} == {"process_name", "thread_name"}
        summary = validate_chrome_trace(doc, require_single_trace=True)
        assert summary == {"spans": 2, "processes": 1, "traces": 1, "roots": 1}

    def test_validation_rejects_orphans(self, tracer):
        spans = self._spans(tracer)
        spans[0].parent_id = "s-not-a-span"  # orphan the child's root
        with pytest.raises(ValidationError, match="orphaned"):
            validate_chrome_trace(to_chrome_trace(spans))

    def test_validation_requires_worker_process(self, tracer):
        doc = to_chrome_trace(self._spans(tracer))
        with pytest.raises(ValidationError, match="process"):
            validate_chrome_trace(doc, require_worker_process=True)

    def test_validation_rejects_empty(self):
        with pytest.raises(ValidationError):
            validate_chrome_trace({"traceEvents": []})

    def test_trace_tree_renders_hierarchy(self, tracer):
        text = trace_tree(self._spans(tracer), title="T")
        root_line, child_line = text.splitlines()[2:4]
        assert root_line.startswith("root")
        assert child_line.startswith("  child")
        assert "(no spans)" in trace_tree([])


# -- metrics -----------------------------------------------------------------
class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", labels=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        with pytest.raises(ValidationError):
            c.inc(-1, kind="a")
        with pytest.raises(ValidationError):
            c.inc(kind="a", extra="x")

    def test_gauge_set_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value() == 3

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        val = h.value()
        assert val["count"] == 5
        assert val["sum"] == pytest.approx(5.605)
        assert val["buckets"] == {"0.01": 1, "0.1": 2, "1.0": 1}
        assert val["inf"] == 1

    def test_registration_idempotent_and_conflicts(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("k",))
        assert reg.counter("x_total", labels=("k",)) is a
        with pytest.raises(ValidationError):
            reg.gauge("x_total", labels=("k",))
        with pytest.raises(ValidationError):
            reg.counter("x_total", labels=("other",))

    def test_snapshot_diff(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        g = reg.gauge("depth")
        h = reg.histogram("lat", buckets=(1.0,))
        c.inc(3)
        g.set(7)
        h.observe(0.5)
        before = reg.snapshot()
        c.inc(2)
        g.set(4)
        h.observe(2.0)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["n_total"]["series"][()] == 2
        assert delta["depth"]["series"][()] == 4  # gauges: latest reading
        assert delta["lat"]["series"][()]["count"] == 1
        assert delta["lat"]["series"][()]["sum"] == pytest.approx(2.0)
        # A no-change interval produces an empty diff for that metric.
        empty = MetricsRegistry.diff(reg.snapshot(), reg.snapshot())
        assert "n_total" not in empty
        assert "lat" not in empty

    def test_merge_adds_counters_overwrites_gauges(self):
        worker = MetricsRegistry()
        worker.counter("n_total").inc(5)
        worker.gauge("depth").set(9)
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("n_total").inc(1)
        parent.merge(worker.snapshot())
        assert parent.counter("n_total").value() == 6
        assert parent.gauge("depth").value() == 9
        assert parent.get("lat").value()["count"] == 1

    def test_merge_with_extra_labels_keeps_series_distinct(self):
        worker = MetricsRegistry()
        worker.counter("w_total").inc(5)
        parent = MetricsRegistry()
        parent.merge(worker.snapshot(), extra_labels={"shard": 0})
        parent.merge(worker.snapshot(), extra_labels={"shard": 1})
        c = parent.get("w_total")
        assert c.value(shard="0") == 5
        assert c.value(shard="1") == 5

    def test_prometheus_export(self):
        reg = MetricsRegistry()
        reg.counter("req_total", help="requests", labels=("kind",)).inc(3, kind="a")
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="a"} 3' in text
        assert "# HELP req_total requests" in text
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_as_dict_flattens_labels(self):
        reg = MetricsRegistry()
        reg.counter("n_total", labels=("a", "b")).inc(2, a="x", b="y")
        d = reg.as_dict()
        assert d["n_total"]["series"] == {"a=x,b=y": 2}

    def test_thread_hammer_exact_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=("worker",))
        g = reg.gauge("adds")
        h = reg.histogram("vals", buckets=(0.5,))
        threads, per_thread = 8, 5000

        def hammer(i):
            for k in range(per_thread):
                c.inc(worker=str(i % 2))
                g.add(1)
                h.observe((k % 10) / 10.0)

        ts = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = threads * per_thread
        assert c.value(worker="0") + c.value(worker="1") == total
        assert g.value() == total
        assert h.value()["count"] == total


# -- layer integration -------------------------------------------------------
class TestInstrumentation:
    def test_traced_search_is_one_trace(self, global_obs):
        ref, queries, _ = planted_instance(6000, 3, 60, seed=71)
        run = search(queries, ref, k=3, window=120, overlap=76)
        run.topk()
        spans = global_obs.spans()
        names = {s.name for s in spans}
        assert {"search", "seed", "verify", "reduce"} <= names
        summary = validate_chrome_trace(
            to_chrome_trace(spans), require_single_trace=True
        )
        assert summary["roots"] == 1

    def test_search_metrics_recorded(self):
        reg = get_registry()
        before = reg.snapshot()
        ref, queries, _ = planted_instance(6000, 3, 60, seed=72)
        search(queries, ref, k=3, window=120, overlap=76).topk()
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["search_runs_total"]["series"][()] == 1
        assert delta["search_queries_total"]["series"][()] == 3
        pairs = delta["pipeline_pairs_total"]["series"][("search",)]
        assert pairs > 0

    def test_service_stats_registry_coherent(self):
        from repro.serve.stats import ServiceStats

        st = ServiceStats()
        st.note_submit(depth=3)
        st.note_batch(2, cause="full")
        st.note_complete(0.01)
        st.note_reject("deadline")
        assert st.submitted == 1
        assert st.completed == 1
        assert st.rejected == {"deadline": 1}
        assert st.occupancy == {2: 1}
        # The same numbers are visible through the registry export.
        prom = st.registry.to_prometheus()
        assert "serve_submitted_total 1" in prom
        assert 'serve_rejected_total{cause="deadline"} 1' in prom


# -- perf.report aggregation -------------------------------------------------
class TestSnapshotAggregation:
    def test_perf_snapshot_document(self, global_obs):
        ref, queries, _ = planted_instance(6000, 2, 60, seed=73)
        run = search(queries, ref, k=3, window=120, overlap=76)
        run.topk()
        doc = perf_snapshot(pipelines=[run.stats], tracer=global_obs)
        text = json.dumps(doc)  # the whole point: one JSON document
        assert doc["pipelines"][0]["pairs"] == run.stats.pairs
        assert "search_runs_total" in doc["metrics"]
        assert doc["trace"]["spans"] == len(global_obs.spans())
        assert "search" in doc["trace"]["tree"]
        assert "pipelines" in json.loads(text)

    def test_stats_as_dict_are_json_ready(self):
        from repro.serve.stats import ServiceStats
        from repro.shard.stats import PoolStats, ShardRunStats, ShardWorkerStats

        ws = ShardWorkerStats(shard_id=0, pairs=4, hits=2)
        rs = ShardRunStats(num_shards=1)
        rs.add(ws)
        ps = PoolStats(num_shards=1)
        ps.last_run = rs
        for obj in (ws, rs, ps, ServiceStats()):
            json.dumps(obj.as_dict())
        assert rs.as_dict()["workers"][0]["pairs"] == 4
        assert ps.as_dict()["last_run"]["totals"]["hits"] == 2


# -- cross-process propagation ----------------------------------------------
def _plan(num_shards=2, **search_kw):
    return ShardPlan(
        num_shards=num_shards,
        search=SearchConfig(**search_kw),
        start_method="fork",
    )


class TestPoolPropagation:
    def test_pool_search_stitches_worker_spans(self, global_obs):
        ref, queries, _ = planted_instance(8000, 3, 80, seed=74)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            pool.ping()  # estimate per-worker clock offsets
            global_obs.clear()  # trace only the search itself
            with global_obs.span("client"):
                pool.search_topk(queries)
        spans = global_obs.spans()
        summary = validate_chrome_trace(
            to_chrome_trace(spans),
            require_worker_process=True,
            require_single_trace=True,
        )
        assert summary["roots"] == 1
        assert summary["processes"] == 3  # parent + 2 shard workers
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        # Every worker's root span hangs off a pool.command round trip.
        commands = {s.span_id for s in by_name["pool.command"]}
        assert len(by_name["worker.search"]) == 2
        for w in by_name["worker.search"]:
            assert w.parent_id in commands
            assert w.process.startswith("shard-")

    def test_propagation_survives_worker_respawn(self, global_obs):
        ref, queries, _ = planted_instance(8000, 3, 80, seed=75)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            with global_obs.span("first"):
                first = pool.search_topk(queries)
            pool._procs[1].terminate()
            pool._procs[1].join()
            global_obs.clear()
            with global_obs.span("second"):
                second = pool.search_topk(queries)
            assert pool.stats.respawns == pool.num_shards
        assert hit_keys(second) == hit_keys(first)
        spans = global_obs.spans()
        summary = validate_chrome_trace(
            to_chrome_trace(spans),
            require_worker_process=True,
            require_single_trace=True,
        )
        # The respawned workers' spans re-attach under the new root: no
        # orphans (validate checked reachability), exactly one root, and
        # a worker.search span from every respawned shard.
        assert summary["roots"] == 1
        workers = [s for s in spans if s.name == "worker.search"]
        assert {s.process for s in workers} == {"shard-0", "shard-1"}

    def test_untraced_pool_search_ships_no_spans(self, global_obs):
        disable_tracing()
        ref, queries, _ = planted_instance(6000, 2, 60, seed=76)
        with ShardWorkerPool(ref, plan=_plan(k=3), timeout=120) as pool:
            pool.search_topk(queries)
        assert global_obs.spans() == []


# -- Prometheus text-format conformance --------------------------------------
class TestPrometheusConformance:
    """The 0.0.4 exposition rules a real scraper depends on."""

    def test_help_line_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", help="line one\nline two \\ backslash").inc()
        text = reg.to_prometheus()
        assert "# HELP esc_total line one\\nline two \\\\ backslash" in text
        assert "\nline two" not in text.split("# HELP", 1)[1].split("\n", 1)[0]

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("lv_total", labels=("path",))
        c.inc(path='a"b\\c\nd')
        text = reg.to_prometheus()
        assert 'lv_total{path="a\\"b\\\\c\\nd"} 1' in text
        # Each sample stays one line: escaping kept the newline literal.
        sample_lines = [l for l in text.splitlines() if l.startswith("lv_total{")]
        assert len(sample_lines) == 1

    def test_label_order_follows_declaration(self):
        reg = MetricsRegistry()
        c = reg.counter("ord_total", labels=("zeta", "alpha"))
        c.inc(zeta="z", alpha="a")
        assert 'ord_total{zeta="z",alpha="a"} 1' in reg.to_prometheus()

    def test_series_are_sorted_and_typed(self):
        reg = MetricsRegistry()
        c = reg.counter("s_total", help="h", labels=("k",))
        c.inc(k="b")
        c.inc(k="a")
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert lines.index("# HELP s_total h") < lines.index("# TYPE s_total counter")
        a = lines.index('s_total{k="a"} 1')
        b = lines.index('s_total{k="b"} 1')
        assert lines.index("# TYPE s_total counter") < a < b
        assert text.endswith("\n")  # exposition must end with a newline

    def test_histogram_invariants(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", labels=("op",), buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v, op="x")
        lines = reg.to_prometheus().splitlines()
        buckets = [l for l in lines if l.startswith("lat_seconds_bucket")]
        # Cumulative and monotone, le is the LAST label, +Inf == _count.
        assert buckets == [
            'lat_seconds_bucket{op="x",le="0.01"} 1',
            'lat_seconds_bucket{op="x",le="0.1"} 2',
            'lat_seconds_bucket{op="x",le="1.0"} 3',
            'lat_seconds_bucket{op="x",le="+Inf"} 4',
        ]
        assert 'lat_seconds_count{op="x"} 4' in lines
        (sum_line,) = [l for l in lines if l.startswith("lat_seconds_sum")]
        assert float(sum_line.split()[-1]) == pytest.approx(5.555)

    def test_invalid_names_rejected_at_registration(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("bad-name")
        with pytest.raises(ValidationError):
            reg.counter("9starts_with_digit")
        with pytest.raises(ValidationError):
            reg.counter("ok_total", labels=("bad-label",))
        with pytest.raises(ValidationError):
            reg.counter("ok_total", labels=("__reserved",))
        with pytest.raises(ValidationError):
            reg.histogram("hist_seconds", labels=("le",))  # reserved for buckets
        reg.counter("ok:total", labels=("ok_label",)).inc(ok_label="v")  # colons OK

    def test_merged_shard_labels_scrape_cleanly(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("req_total", help="reqs", labels=("cause",)).inc(cause="a")
        parent.merge(worker.snapshot(), extra_labels={"shard": 0})
        parent.merge(worker.snapshot(), extra_labels={"shard": 1})
        text = parent.to_prometheus()
        assert 'req_total{cause="a",shard="0"} 1' in text
        assert 'req_total{cause="a",shard="1"} 1' in text
