"""Tests for SLO tracking and burn-rate shedding (repro.obs.slo + serve).

Covers the error-budget contract:

* objective/window validation and the rolling-bin bookkeeping;
* burn-rate math — ``(bad/total)/(1 - target)``, empty windows are not
  evidence, per-priority matching, latency bounds judged per objective;
* multi-window alerts — BOTH the short and long window must exceed the
  threshold; alerts clear when the burn subsides; evaluation is cached
  per bin; transitions land in the structured log;
* the admission loop — a service with declared SLOs sheds BULK (and only
  the configured classes) while a fast burn is active, counts every
  decision on the dedicated labeled counters, and never touches accepted
  work.
"""

import asyncio

import pytest

from repro.obs import get_log_sink
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    BurnWindow,
    SLObjective,
    SLOTracker,
)
from repro.serve import (
    AlignmentService,
    Priority,
    ServiceOverloadedError,
)
from repro.serve.service import ServiceConfig
from repro.util.checks import ValidationError


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_tracker(clock, *, target=0.99, latency_s=None, priority=None):
    return SLOTracker(
        [
            SLObjective(
                name="obj", target=target, latency_s=latency_s, priority=priority
            )
        ],
        clock=clock,
    )


# -- declarations ------------------------------------------------------------
class TestDeclarations:
    def test_objective_validation(self):
        with pytest.raises(ValidationError):
            SLObjective(name="")
        with pytest.raises(ValidationError):
            SLObjective(name="x", target=1.0)  # no budget to burn
        with pytest.raises(ValidationError):
            SLObjective(name="x", target=0.0)
        with pytest.raises(ValidationError):
            SLObjective(name="x", latency_s=-1.0)

    def test_burn_window_validation(self):
        with pytest.raises(ValidationError):
            BurnWindow("bad", short_s=60.0, long_s=60.0, threshold=1.0)
        with pytest.raises(ValidationError):
            BurnWindow("bad", short_s=60.0, long_s=600.0, threshold=0)

    def test_default_windows_are_the_sre_pairs(self):
        assert [(w.label, w.short_s, w.long_s, w.threshold) for w in DEFAULT_BURN_WINDOWS] == [
            ("fast", 300.0, 3600.0, 14.4),
            ("slow", 3600.0, 21600.0, 6.0),
        ]

    def test_tracker_validation(self):
        with pytest.raises(ValidationError):
            SLOTracker([])
        with pytest.raises(ValidationError):
            SLOTracker([SLObjective(name="a"), SLObjective(name="a")])
        with pytest.raises(ValidationError):
            SLOTracker(["not-an-objective"])

    def test_objectives_ride_service_config(self):
        cfg = ServiceConfig(slos=(SLObjective(name="x"),))
        assert cfg.slos[0].name == "x"
        with pytest.raises(ValidationError):
            ServiceConfig(slos=("nope",))
        with pytest.raises(ValidationError):
            ServiceConfig(shed_priorities=("URGENT",))


# -- burn / budget math ------------------------------------------------------
class TestBurnMath:
    def test_burn_rate_formula(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target=0.99)
        for i in range(100):
            tracker.observe(error=(i < 10))  # 10% bad
            clock.advance(1.0)
        # (0.1) / (0.01) = 10x the budgeted bad fraction
        assert tracker.burn_rate("obj", 300.0) == pytest.approx(10.0)

    def test_empty_window_is_zero_not_alert(self):
        tracker = make_tracker(FakeClock())
        assert tracker.burn_rate("obj", 300.0) == 0.0
        assert tracker.alerts(force=True) == []
        assert not tracker.fast_burn_active()

    def test_unknown_objective_rejected(self):
        tracker = make_tracker(FakeClock())
        with pytest.raises(ValidationError):
            tracker.burn_rate("nope", 60.0)

    def test_latency_bound_judged_per_objective(self):
        clock = FakeClock()
        tracker = SLOTracker(
            [
                SLObjective(name="tight", target=0.5, latency_s=0.01),
                SLObjective(name="loose", target=0.5, latency_s=10.0),
            ],
            clock=clock,
        )
        tracker.observe(latency_s=1.0)  # bad for tight, good for loose
        assert tracker.burn_rate("tight", 60.0) == pytest.approx(2.0)
        assert tracker.burn_rate("loose", 60.0) == 0.0

    def test_priority_matching(self):
        clock = FakeClock()
        tracker = make_tracker(clock, priority="NORMAL")
        tracker.observe(priority="BULK", error=True)  # not watched
        assert tracker.budget("obj")["events"] == 0
        tracker.observe(priority="NORMAL", error=True)
        assert tracker.budget("obj")["events"] == 1

    def test_budget_ledger(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target=0.9)
        for i in range(100):
            tracker.observe(error=(i < 5))
        budget = tracker.budget("obj")
        assert budget["events"] == 100 and budget["bad"] == 5
        assert budget["budget_events"] == pytest.approx(10.0)
        assert budget["budget_remaining"] == pytest.approx(5.0)
        assert budget["budget_remaining_fraction"] == pytest.approx(0.5)

    def test_events_age_out_of_the_horizon(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.observe(error=True)
        clock.advance(30000.0)  # past the 6h slow-long horizon
        assert tracker.budget("obj")["events"] == 0


# -- multi-window alerts -----------------------------------------------------
class TestBurnAlerts:
    def test_short_window_alone_does_not_fire(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target=0.99)
        # A long stretch of good traffic, then a 2-minute 100% bad blip:
        # the 5m window burns hot but the 1h window stays below 14.4.
        for _ in range(3600):
            tracker.observe()
            clock.advance(1.0)
        for _ in range(120):
            tracker.observe(error=True)
            clock.advance(1.0)
        assert tracker.burn_rate("obj", 300.0) > 14.4
        assert tracker.burn_rate("obj", 3600.0) < 14.4
        assert not tracker.fast_burn_active()

    def test_sustained_burn_fires_then_clears(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target=0.99)
        for _ in range(600):
            tracker.observe(error=True)
            clock.advance(1.0)
        alerts = tracker.alerts(force=True)
        assert {a.window for a in alerts} >= {"fast"}
        assert tracker.fast_burn_active() and tracker.fast_burn_active("obj")
        first = next(a for a in alerts if a.window == "fast")
        assert first.burn_short >= 14.4 and first.burn_long >= 14.4
        since = first.since
        # Still burning a bit later: 'since' sticks to the first firing.
        clock.advance(60.0)
        tracker.observe(error=True)
        again = next(a for a in tracker.alerts(force=True) if a.window == "fast")
        assert again.since == since
        # Good traffic dilutes both windows below threshold -> clears.
        for _ in range(7200):
            tracker.observe()
            clock.advance(1.0)
        assert tracker.alerts(force=True) == []
        assert not tracker.fast_burn_active()

    def test_evaluation_is_cached_per_bin(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(600):
            tracker.observe(error=True)
            clock.advance(1.0)
        assert tracker.fast_burn_active()
        # Within the same bin the cache holds even as traffic changes...
        tracker.observe()
        assert tracker.fast_burn_active()
        # ...and force=True re-evaluates immediately.
        assert tracker.alerts(force=True) != []

    def test_transitions_land_in_the_log(self):
        sink = get_log_sink()
        sink.clear()
        clock = FakeClock()
        tracker = make_tracker(clock)
        try:
            for _ in range(600):
                tracker.observe(error=True)
                clock.advance(1.0)
            tracker.alerts(force=True)
            messages = [r.message for r in sink.records()]
            assert "burn-rate alert firing" in messages
        finally:
            sink.clear()

    def test_snapshot_document(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.observe(error=True)
        doc = tracker.snapshot()
        assert doc["events"] == 1
        (entry,) = doc["objectives"]
        assert entry["name"] == "obj"
        assert set(entry["burn"]) == {"fast_short", "fast_long", "slow_short", "slow_long"}
        assert isinstance(doc["alerts"], list)


# -- the admission loop ------------------------------------------------------
def _burning_tracker(clock):
    """A tracker for NORMAL traffic already deep in fast burn."""
    tracker = SLOTracker(
        [SLObjective(name="normal-lat", target=0.99, priority="NORMAL")],
        clock=clock,
    )
    for _ in range(600):
        tracker.observe(priority="NORMAL", error=True)
        clock.advance(1.0)
    assert tracker.fast_burn_active()
    return tracker


class TestAdmissionShedding:
    def test_bulk_shed_while_burning_interactive_admitted(self):
        async def main():
            clock = FakeClock()
            tracker = _burning_tracker(clock)
            svc = AlignmentService(
                scheme=None,
                config=ServiceConfig(slos=(SLObjective(name="unused", priority="NORMAL"),)),
                slo=tracker,
            )
            async with svc:
                with pytest.raises(ServiceOverloadedError, match="shed"):
                    await svc.submit("ACGT", "ACGT", priority=Priority.BULK)
                # Protected classes ride through and resolve normally.
                score = await svc.submit("ACGT", "ACGT", priority=Priority.INTERACTIVE)
                assert isinstance(score, int)
                # The decision is observable on the dedicated counter.
                assert svc.stats.admission_rejected == {("shed", "BULK"): 1}
                assert svc.stats.rejected == {"shed": 1}
            return True

        assert asyncio.run(main())

    def test_no_shed_after_burn_clears(self):
        async def main():
            clock = FakeClock()
            tracker = _burning_tracker(clock)
            for _ in range(7200):
                tracker.observe(priority="NORMAL")
                clock.advance(1.0)
            assert not tracker.fast_burn_active()
            svc = AlignmentService(scheme=None, slo=tracker)
            async with svc:
                score = await svc.submit("ACGT", "ACGT", priority=Priority.BULK)
                assert isinstance(score, int)
                assert svc.stats.admission_rejected == {}
            return True

        assert asyncio.run(main())

    def test_shed_classes_follow_config(self):
        async def main():
            clock = FakeClock()
            tracker = _burning_tracker(clock)
            svc = AlignmentService(
                scheme=None,
                config=ServiceConfig(shed_priorities=("BULK", "NORMAL")),
                slo=tracker,
            )
            async with svc:
                for priority in (Priority.BULK, Priority.NORMAL):
                    with pytest.raises(ServiceOverloadedError):
                        await svc.submit("AC", "AC", priority=priority)
                assert isinstance(
                    await svc.submit("AC", "AC", priority=Priority.INTERACTIVE), int
                )
            return True

        assert asyncio.run(main())

    def test_completions_feed_the_tracker(self):
        async def main():
            svc = AlignmentService(
                scheme=None,
                config=ServiceConfig(
                    slos=(SLObjective(name="all", target=0.99, latency_s=30.0),)
                ),
            )
            async with svc:
                await svc.submit("ACGT", "ACGT")
                budget = svc.slo.budget("all")
                assert budget["events"] == 1 and budget["bad"] == 0
            return True

        assert asyncio.run(main())

    def test_deadline_expiry_counts_as_error_and_stage(self):
        async def main():
            svc = AlignmentService(
                scheme=None,
                target_batch=64,
                max_linger=0.01,
                config=ServiceConfig(
                    slos=(SLObjective(name="all", target=0.99),)
                ),
            )
            async with svc:
                from repro.serve import DeadlineExceededError

                with pytest.raises(DeadlineExceededError):
                    await svc.submit("ACGT", "ACGT", timeout=0.0)
                assert svc.slo.budget("all")["bad"] == 1
                assert sum(svc.stats.deadline_exceeded.values()) == 1
            return True

        assert asyncio.run(main())
